// Fleet control plane (src/fleet, docs/FLEET.md): placement policy unit
// tests, volume-directory epoch fencing, and FleetController functional
// coverage — create/clone placement, live migration with intact data and
// measured blackout, host failover via the lease detector, capacity
// rejection, and determinism of the parallel fleet across thread counts.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "src/fleet/placement.h"
#include "src/objstore/mem_object_store.h"
#include "src/objstore/volume_directory.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

// --- placement policy ---

HostLoad MakeLoad(int host, uint64_t free_bytes, int volumes,
                  uint64_t iops = 0, bool alive = true) {
  HostLoad l;
  l.host = host;
  l.alive = alive;
  l.ssd_free_bytes = free_bytes;
  l.volumes = volumes;
  l.reserved_iops = iops;
  return l;
}

TEST(PlacementTest, FirstFitPicksLowestFittingId) {
  std::vector<HostLoad> loads = {
      MakeLoad(0, kMiB, 0),       // too small
      MakeLoad(1, 8 * kMiB, 5),   // fits: wins despite the load
      MakeLoad(2, 64 * kMiB, 0),  // fits, but later
  };
  PlacementRequest req;
  req.ssd_bytes = 4 * kMiB;
  EXPECT_EQ(ChoosePlacement(PlacementPolicyKind::kFirstFit, loads, req), 1);
}

TEST(PlacementTest, LoadSpreadPrefersFewestVolumesThenFreeBytes) {
  std::vector<HostLoad> loads = {
      MakeLoad(0, 8 * kMiB, 3),
      MakeLoad(1, 8 * kMiB, 1),
      MakeLoad(2, 16 * kMiB, 1),  // ties on volumes, more free bytes
  };
  PlacementRequest req;
  req.ssd_bytes = 4 * kMiB;
  EXPECT_EQ(ChoosePlacement(PlacementPolicyKind::kLoadSpread, loads, req), 2);
}

TEST(PlacementTest, SkipsDeadAndExcludedHosts) {
  std::vector<HostLoad> loads = {
      MakeLoad(0, 64 * kMiB, 0, 0, /*alive=*/false),
      MakeLoad(1, 64 * kMiB, 0),
      MakeLoad(2, 64 * kMiB, 9),
  };
  PlacementRequest req;
  req.ssd_bytes = 4 * kMiB;
  req.exclude_host = 1;
  EXPECT_EQ(ChoosePlacement(PlacementPolicyKind::kLoadSpread, loads, req), 2);
  loads[2].alive = false;
  EXPECT_EQ(ChoosePlacement(PlacementPolicyKind::kLoadSpread, loads, req),
            -1);
}

TEST(PlacementTest, IopsBudgetRejectsOverCommit) {
  std::vector<HostLoad> loads = {MakeLoad(0, 64 * kMiB, 0, /*iops=*/900)};
  PlacementRequest req;
  req.ssd_bytes = 4 * kMiB;
  req.iops = 200;
  req.iops_budget = 1000;  // 900 reserved + 200 would overshoot
  EXPECT_EQ(ChoosePlacement(PlacementPolicyKind::kFirstFit, loads, req), -1);
  req.iops = 100;
  EXPECT_EQ(ChoosePlacement(PlacementPolicyKind::kFirstFit, loads, req), 0);
  req.iops_budget = 0;  // 0 = unlimited
  req.iops = 5000;
  EXPECT_EQ(ChoosePlacement(PlacementPolicyKind::kFirstFit, loads, req), 0);
}

// --- volume directory + fencing ---

TEST(VolumeDirectoryTest, RegisterFlipLookup) {
  VolumeDirectory dir;
  EXPECT_EQ(dir.Register("vol", 0), 1u);
  EXPECT_EQ(dir.CurrentEpoch("vol"), 1u);
  EXPECT_EQ(dir.Flip("vol", 2), 2u);
  auto entry = dir.Lookup("vol");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->host, 2);
  EXPECT_EQ(entry->epoch, 2u);
  EXPECT_EQ(dir.CurrentEpoch("unknown"), 0u);
  EXPECT_FALSE(dir.Lookup("unknown").ok());
}

TEST(VolumeDirectoryTest, EpochFlipFencesOldWritersButNotReaders) {
  Simulator sim;
  MemObjectStore mem(&sim);
  VolumeDirectory dir;
  dir.Register("vol", 0);
  FencedObjectStore old_view(&sim, &mem, &dir, "vol", /*epoch=*/1);

  std::optional<Status> put;
  old_view.Put("vol.d.1", TestPattern(512, 1), [&](Status s) { put = s; });
  sim.Run();
  ASSERT_TRUE(put.has_value() && put->ok());

  dir.Flip("vol", 1);  // new owner; epoch 1 view is now stale
  EXPECT_TRUE(old_view.fenced());
  put.reset();
  old_view.Put("vol.d.2", TestPattern(512, 2), [&](Status s) { put = s; });
  std::optional<Status> del;
  old_view.Delete("vol.d.1", [&](Status s) { del = s; });
  sim.Run();
  ASSERT_TRUE(put.has_value() && del.has_value());
  EXPECT_EQ(put->code(), StatusCode::kFenced);
  EXPECT_EQ(del->code(), StatusCode::kFenced);

  // Reads pass through: objects are immutable, stale readers are harmless.
  std::optional<Result<Buffer>> got;
  old_view.Get("vol.d.1", [&](Result<Buffer> r) { got = std::move(r); });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok());
  EXPECT_EQ(mem.List("vol.").size(), 1u);  // the fenced PUT never landed
}

// --- fleet controller (sequential engine) ---

FleetConfig SmallFleetConfig(int hosts) {
  FleetConfig fc;
  fc.hosts = hosts;
  fc.shards = 1;
  fc.cluster = ClusterConfig::SsdPool();
  fc.cluster.num_disks = 4;
  fc.host.ssd_capacity = 512 * kMiB;  // 8 small volumes per host
  fc.host.ssd = SsdParams::Instant();
  return fc;
}

LsvdConfig SmallVolumeConfig(const std::string& name) {
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.volume_name = name;
  return config;
}

Status CreateSync(Simulator* sim, FleetController* fleet, int* id,
                  const std::string& name, bool track = false) {
  std::optional<Status> result;
  *id = fleet->CreateVolume(SmallVolumeConfig(name),
                            [&](Status s) { result = s; }, track);
  while (!result.has_value() && sim->Step()) {
  }
  return result.value_or(Status::Unavailable("create never completed"));
}

Result<uint64_t> SnapshotSync(Simulator* sim, LsvdDisk* disk) {
  std::optional<Result<uint64_t>> result;
  disk->Snapshot([&](Result<uint64_t> r) { result = std::move(r); });
  while (!result.has_value() && sim->Step()) {
  }
  if (!result.has_value()) {
    return Status::Unavailable("snapshot never completed");
  }
  return *result;
}

TEST(FleetTest, CreateSpreadsVolumesAndServesIo) {
  Simulator sim;
  FleetController fleet(&sim, SmallFleetConfig(3));
  std::vector<int> ids;
  for (int i = 0; i < 6; i++) {
    int id = -1;
    ASSERT_TRUE(
        CreateSync(&sim, &fleet, &id, "vol" + std::to_string(i)).ok());
    ASSERT_GE(id, 0);
    EXPECT_EQ(fleet.health(id), FleetController::VolumeHealth::kActive);
    ids.push_back(id);
  }
  // Load-spread: 6 equal volumes over 3 hosts must land 2 per host.
  for (int h = 0; h < 3; h++) {
    EXPECT_EQ(fleet.volumes_on(h), 2) << "host " << h;
  }
  // Each volume serves reads of its own writes.
  const Buffer data = TestPattern(64 * kKiB, 7);
  ASSERT_TRUE(WriteSync(&sim, fleet.disk(ids[4]), kMiB, data).ok());
  auto back = ReadSync(&sim, fleet.disk(ids[4]), kMiB, 64 * kKiB);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ToBytes() == data.ToBytes());
}

TEST(FleetTest, PlacementRejectionFailsCreateGracefully) {
  Simulator sim;
  FleetConfig fc = SmallFleetConfig(1);
  fc.host.ssd_capacity = 96 * kMiB;  // one 64 MiB-footprint volume only
  FleetController fleet(&sim, fc);
  int id = -1;
  ASSERT_TRUE(CreateSync(&sim, &fleet, &id, "fits").ok());
  int id2 = -1;
  const Status s = CreateSync(&sim, &fleet, &id2, "does-not-fit");
  EXPECT_EQ(id2, -1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(fleet.metrics().GetCounter("fleet.placement_rejected")->value(),
            1u);
  EXPECT_EQ(fleet.metrics().GetCounter("fleet.creates")->value(), 1u);
}

TEST(FleetTest, CloneReadsBaseImageAndDivergesPrivately) {
  Simulator sim;
  FleetController fleet(&sim, SmallFleetConfig(2));
  int golden = -1;
  ASSERT_TRUE(CreateSync(&sim, &fleet, &golden, "golden").ok());
  const Buffer base_data = TestPattern(128 * kKiB, 11);
  ASSERT_TRUE(WriteSync(&sim, fleet.disk(golden), 0, base_data).ok());
  auto seq = SnapshotSync(&sim, fleet.disk(golden));
  ASSERT_TRUE(seq.ok());

  std::optional<Status> cloned;
  const int clone =
      fleet.CloneVolume(golden, "clone0", *seq, [&](Status s) { cloned = s; });
  while (!cloned.has_value() && sim.Step()) {
  }
  ASSERT_TRUE(cloned.has_value() && cloned->ok());
  ASSERT_GE(clone, 0);
  EXPECT_EQ(fleet.metrics().GetCounter("fleet.clones")->value(), 1u);

  // The clone sees the pinned base image...
  auto got = ReadSync(&sim, fleet.disk(clone), 0, 128 * kKiB);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->ToBytes() == base_data.ToBytes());
  // ...and its writes never leak back into the base.
  const Buffer priv = TestPattern(4 * kKiB, 12);
  ASSERT_TRUE(WriteSync(&sim, fleet.disk(clone), 0, priv).ok());
  auto base_back = ReadSync(&sim, fleet.disk(golden), 0, 4 * kKiB);
  ASSERT_TRUE(base_back.ok());
  const std::vector<uint8_t> base_bytes = base_data.ToBytes();
  EXPECT_TRUE(base_back->ToBytes() ==
              std::vector<uint8_t>(base_bytes.begin(),
                                   base_bytes.begin() + 4 * kKiB));
}

TEST(FleetTest, MigrationMovesVolumeIntactWithMeasuredBlackout) {
  Simulator sim;
  FleetController fleet(&sim, SmallFleetConfig(2));
  int id = -1;
  ASSERT_TRUE(CreateSync(&sim, &fleet, &id, "mover").ok());
  const int src = fleet.host_of(id);
  const Buffer data = TestPattern(256 * kKiB, 21);
  ASSERT_TRUE(WriteSync(&sim, fleet.disk(id), 8 * kMiB, data).ok());
  const uint64_t src_allocated_before =
      fleet.host(src)->ssd_regions()->allocated_bytes();

  std::optional<Status> done;
  MigrationStats stats;
  ASSERT_TRUE(fleet
                  .MigrateVolume(id, /*dst_host=*/-1,
                                 [&](Status s, const MigrationStats& ms) {
                                   done = s;
                                   stats = ms;
                                 })
                  .ok());
  while (!done.has_value() && sim.Step()) {
  }
  ASSERT_TRUE(done.has_value() && done->ok()) << done->message();

  EXPECT_NE(fleet.host_of(id), src);
  EXPECT_EQ(stats.src_host, src);
  EXPECT_EQ(stats.dst_host, fleet.host_of(id));
  EXPECT_GT(stats.drain, 0);
  EXPECT_GT(stats.blackout, 0);
  EXPECT_EQ(stats.total, stats.drain + stats.blackout);
  EXPECT_GT(stats.handoff_bytes, 0u);
  // Epoch flipped: old-attachment writers would now be fenced.
  EXPECT_EQ(fleet.volume_epoch(id), 2u);
  EXPECT_EQ(fleet.directory().CurrentEpoch("mover"), 2u);
  // The source host got its SSD cache regions back.
  EXPECT_LT(fleet.host(src)->ssd_regions()->allocated_bytes(),
            src_allocated_before);
  EXPECT_EQ(fleet.volumes_on(src), 0);
  // Data survives the move bit-for-bit.
  auto back = ReadSync(&sim, fleet.disk(id), 8 * kMiB, 256 * kKiB);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ToBytes() == data.ToBytes());
  EXPECT_EQ(fleet.metrics().GetCounter("fleet.migrations")->value(), 1u);
}

TEST(FleetTest, MigrationRejectsBadArguments) {
  Simulator sim;
  FleetController fleet(&sim, SmallFleetConfig(2));
  int id = -1;
  ASSERT_TRUE(CreateSync(&sim, &fleet, &id, "vol").ok());
  EXPECT_EQ(fleet.MigrateVolume(99).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(fleet.MigrateVolume(id, fleet.host_of(id)).code(),
            StatusCode::kInvalidArgument);
  // Single survivor-less fleet: the auto-picked destination cannot exist.
  Simulator sim1;
  FleetController one(&sim1, SmallFleetConfig(1));
  int lone = -1;
  ASSERT_TRUE(CreateSync(&sim1, &one, &lone, "lone").ok());
  EXPECT_EQ(one.MigrateVolume(lone).code(), StatusCode::kResourceExhausted);
}

TEST(FleetTest, LeaseDetectorFailsOverKilledHostsVolumes) {
  Simulator sim;
  FleetController fleet(&sim, SmallFleetConfig(3));
  std::vector<int> ids;
  std::vector<std::vector<uint8_t>> payloads;
  for (int i = 0; i < 3; i++) {
    int id = -1;
    ASSERT_TRUE(
        CreateSync(&sim, &fleet, &id, "vol" + std::to_string(i)).ok());
    const Buffer data = TestPattern(64 * kKiB, 100 + static_cast<uint64_t>(i));
    payloads.push_back(data.ToBytes());
    ASSERT_TRUE(WriteSync(&sim, fleet.disk(id), 0, data).ok());
    // Recover-attach is OpenCacheLost: only drained data must survive.
    ASSERT_TRUE(DrainSync(&sim, fleet.disk(id)).ok());
    ids.push_back(id);
  }
  const int victim_host = fleet.host_of(ids[0]);

  const Nanos t0 = sim.now();
  fleet.RunControlPlane(t0 + FromSeconds(2.0));
  sim.At(t0 + 300 * kMillisecond, [&] { fleet.KillHost(victim_host); });
  sim.Run();

  EXPECT_FALSE(fleet.host_process_alive(victim_host));
  EXPECT_TRUE(fleet.host_declared_dead(victim_host));
  EXPECT_GE(fleet.metrics().GetCounter("fleet.leases_expired")->value(), 1u);
  EXPECT_EQ(fleet.metrics().GetCounter("fleet.failovers")->value(), 1u);
  for (size_t i = 0; i < ids.size(); i++) {
    ASSERT_EQ(fleet.health(ids[static_cast<size_t>(i)]),
              FleetController::VolumeHealth::kActive);
    EXPECT_NE(fleet.host_of(ids[i]), victim_host);
    auto back = ReadSync(&sim, fleet.disk(ids[i]), 0, 64 * kKiB);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->ToBytes() == payloads[i]) << "volume " << ids[i];
  }
  // Detection latency was recorded, on the order of the 250 ms lease
  // (>=100 ms even after histogram bucket quantization).
  const auto snap = fleet.metrics().Snapshot();
  EXPECT_GE(snap.Percentile("fleet.failover.detect_us", 0.5), 100e3);
}

TEST(FleetTest, HeartbeatsKeepHealthyHostsAlive) {
  Simulator sim;
  FleetController fleet(&sim, SmallFleetConfig(2));
  int id = -1;
  ASSERT_TRUE(CreateSync(&sim, &fleet, &id, "vol").ok());
  fleet.RunControlPlane(sim.now() + FromSeconds(1.0));
  sim.Run();
  EXPECT_EQ(fleet.metrics().GetCounter("fleet.leases_expired")->value(), 0u);
  EXPECT_GT(fleet.metrics().GetCounter("fleet.heartbeats")->value(), 0u);
  for (int h = 0; h < 2; h++) {
    EXPECT_FALSE(fleet.host_declared_dead(h));
  }
}

// --- parallel engine ---

std::string RunParallelFleet(int threads) {
  MetricsRegistry metrics;
  Simulator control_inner;
  SimDomainGroup group;
  SimDomain* control = group.AdoptDomain("control", &control_inner);
  FleetConfig fc = SmallFleetConfig(3);
  FleetController fleet(&group, control, fc, &metrics);
  for (int i = 0; i < 6; i++) {
    fleet.CreateVolume(SmallVolumeConfig("vol" + std::to_string(i)));
  }
  group.Run(threads);
  Nanos latest = control_inner.now();
  for (int h = 0; h < fleet.num_hosts(); h++) {
    latest = std::max(latest, fleet.host_sim(h)->now());
  }
  fleet.RunControlPlane(latest + 500 * kMillisecond);
  group.Run(threads);
  return metrics.ToJson();
}

TEST(FleetParallelTest, MetricDumpIdenticalAcrossThreadCounts) {
  const std::string one = RunParallelFleet(1);
  EXPECT_EQ(one, RunParallelFleet(2));
  EXPECT_EQ(one, RunParallelFleet(4));
}

// Regression: the control domain idles while host domains serve I/O, so its
// clock can lag the fleet by whole virtual seconds when RunControlPlane is
// called. The lease bookkeeping must anchor at the fleet-wide latest clock —
// an implementation keying off the control domain's own now() reads that
// skew as heartbeat silence and declares every host dead.
TEST(FleetParallelTest, LaggingControlDomainCausesNoSpuriousExpiry) {
  MetricsRegistry metrics;
  Simulator control_inner;
  SimDomainGroup group;
  SimDomain* control = group.AdoptDomain("control", &control_inner);
  FleetController fleet(&group, control, SmallFleetConfig(2), &metrics);
  const int id = fleet.CreateVolume(SmallVolumeConfig("busy"));
  ASSERT_GE(id, 0);
  group.Run(2);
  // Busy host: a long write burst pushes its domain clock far ahead of the
  // idle control domain.
  Simulator* hsim = fleet.host_sim(fleet.host_of(id));
  for (int i = 0; i < 64; i++) {
    const Nanos t = hsim->now() + static_cast<Nanos>(i) * 10 * kMillisecond;
    hsim->At(t, [&fleet, id, i] {
      fleet.disk(id)->Write(static_cast<uint64_t>(i) * 64 * kKiB,
                            TestPattern(4 * kKiB, static_cast<uint64_t>(i)),
                            [](Status) {});
    });
  }
  group.Run(2);
  ASSERT_GT(hsim->now(), control_inner.now());

  Nanos latest = control_inner.now();
  for (int h = 0; h < fleet.num_hosts(); h++) {
    latest = std::max(latest, fleet.host_sim(h)->now());
  }
  fleet.RunControlPlane(latest + FromSeconds(1.0));
  group.Run(2);
  EXPECT_EQ(metrics.GetCounter("fleet.leases_expired")->value(), 0u);
  for (int h = 0; h < fleet.num_hosts(); h++) {
    EXPECT_FALSE(fleet.host_declared_dead(h)) << "host " << h;
  }
  EXPECT_GT(metrics.GetCounter("fleet.heartbeats")->value(), 0u);
}

TEST(FleetParallelTest, KilledHostIsDeclaredDeadByLeaseDetector) {
  MetricsRegistry metrics;
  Simulator control_inner;
  SimDomainGroup group;
  SimDomain* control = group.AdoptDomain("control", &control_inner);
  FleetController fleet(&group, control, SmallFleetConfig(2), &metrics);
  const int id = fleet.CreateVolume(SmallVolumeConfig("vol"));
  ASSERT_GE(id, 0);
  group.Run(2);

  Nanos t0 = control_inner.now();
  for (int h = 0; h < fleet.num_hosts(); h++) {
    t0 = std::max(t0, fleet.host_sim(h)->now());
  }
  const int victim = fleet.host_of(id);
  fleet.RunControlPlane(t0 + FromSeconds(1.5));
  group.At(t0 + 200 * kMillisecond, [&] { fleet.KillHost(victim); });
  group.Run(2);

  EXPECT_TRUE(fleet.host_declared_dead(victim));
  EXPECT_EQ(metrics.GetCounter("fleet.leases_expired")->value(), 1u);
  // Recover-attach is sequential-engine-only; the volume stays down.
  EXPECT_EQ(fleet.health(id), FleetController::VolumeHealth::kDown);
  const auto snap = metrics.Snapshot();
  // Detection = lease_duration + check-grid rounding, well under a second.
  const double detect_us = snap.Percentile("fleet.failover.detect_us", 0.5);
  EXPECT_GT(detect_us, 100e3);
  EXPECT_LT(detect_us, 1e6);
  // Parallel engine refuses the sequential-only management verbs.
  EXPECT_EQ(fleet.MigrateVolume(id).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lsvd
