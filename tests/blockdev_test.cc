// Unit tests for the simulated client SSD: data integrity, durability rules,
// crash injection, and the sequential-vs-random service model.
#include <gtest/gtest.h>

#include <functional>
#include <optional>

#include "src/blockdev/sim_ssd.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace lsvd {
namespace {

Buffer Pattern(uint64_t len, uint8_t seed) {
  std::vector<uint8_t> bytes(len);
  for (uint64_t i = 0; i < len; i++) {
    bytes[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return Buffer::FromBytes(bytes);
}

// Synchronous wrappers that drive the simulator to completion.
Status WriteSync(Simulator* sim, SimSsd* ssd, uint64_t off, Buffer data) {
  std::optional<Status> result;
  ssd->Write(off, std::move(data), [&](Status s) { result = s; });
  sim->Run();
  return *result;
}

Result<Buffer> ReadSync(Simulator* sim, SimSsd* ssd, uint64_t off,
                        uint64_t len) {
  std::optional<Result<Buffer>> result;
  ssd->Read(off, len, [&](Result<Buffer> r) { result = std::move(r); });
  sim->Run();
  return std::move(*result);
}

Status FlushSync(Simulator* sim, SimSsd* ssd) {
  std::optional<Status> result;
  ssd->Flush([&](Status s) { result = s; });
  sim->Run();
  return *result;
}

TEST(SimSsd, WriteThenReadRoundTrips) {
  Simulator sim;
  SimSsd ssd(&sim, kMiB, SsdParams::Instant());
  Buffer data = Pattern(8192, 3);
  ASSERT_TRUE(WriteSync(&sim, &ssd, 4096, data).ok());
  auto r = ReadSync(&sim, &ssd, 4096, 8192);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
}

TEST(SimSsd, UnwrittenReadsAsZeros) {
  Simulator sim;
  SimSsd ssd(&sim, kMiB, SsdParams::Instant());
  auto r = ReadSync(&sim, &ssd, 0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsAllZeros());
}

TEST(SimSsd, RejectsUnalignedAndOutOfRange) {
  Simulator sim;
  SimSsd ssd(&sim, kMiB, SsdParams::Instant());
  EXPECT_EQ(WriteSync(&sim, &ssd, 100, Buffer::Zeros(4096)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteSync(&sim, &ssd, 0, Buffer::Zeros(100)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteSync(&sim, &ssd, kMiB, Buffer::Zeros(4096)).code(),
            StatusCode::kOutOfRange);
  auto r = ReadSync(&sim, &ssd, kMiB - 4096, 8192);
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(SimSsd, PowerFailLosesUnflushedWrites) {
  Simulator sim;
  SimSsd ssd(&sim, kMiB, SsdParams::Instant());
  Buffer flushed = Pattern(4096, 1);
  Buffer unflushed = Pattern(4096, 2);
  ASSERT_TRUE(WriteSync(&sim, &ssd, 0, flushed).ok());
  ASSERT_TRUE(FlushSync(&sim, &ssd).ok());
  ASSERT_TRUE(WriteSync(&sim, &ssd, 4096, unflushed).ok());

  ssd.PowerFail();

  auto r0 = ReadSync(&sim, &ssd, 0, 4096);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(*r0, flushed);  // survived: was flushed
  auto r1 = ReadSync(&sim, &ssd, 4096, 4096);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->IsAllZeros());  // lost: never flushed
}

TEST(SimSsd, PowerFailDuringFlushDoesNotPromote) {
  Simulator sim;
  SimSsd ssd(&sim, kMiB, SsdParams::P3700());
  bool wrote = false;
  ssd.Write(0, Pattern(4096, 9), [&](Status s) {
    ASSERT_TRUE(s.ok());
    wrote = true;
  });
  sim.Run();
  ASSERT_TRUE(wrote);
  // Start a flush but fail power before it completes.
  ssd.Flush([](Status) {});
  ssd.PowerFail();
  sim.Run();
  auto r = ReadSync(&sim, &ssd, 0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsAllZeros());
}

TEST(SimSsd, DiscardAllLosesEverything) {
  Simulator sim;
  SimSsd ssd(&sim, kMiB, SsdParams::Instant());
  ASSERT_TRUE(WriteSync(&sim, &ssd, 0, Pattern(4096, 5)).ok());
  ASSERT_TRUE(FlushSync(&sim, &ssd).ok());
  ssd.DiscardAll();
  auto r = ReadSync(&sim, &ssd, 0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsAllZeros());
}

TEST(SimSsd, SequentialWritesFasterThanRandom) {
  Simulator sim;
  SsdParams params = SsdParams::P3700();
  SimSsd ssd(&sim, kGiB, params);
  Rng rng(11);

  // 1000 sequential 4K writes.
  Nanos t0 = sim.now();
  int remaining = 1000;
  for (int i = 0; i < 1000; i++) {
    ssd.Write(static_cast<uint64_t>(i) * 4096, Buffer::Zeros(4096),
              [&](Status s) {
                ASSERT_TRUE(s.ok());
                remaining--;
              });
  }
  sim.Run();
  ASSERT_EQ(remaining, 0);
  const Nanos seq_time = sim.now() - t0;

  // 1000 random 4K writes.
  t0 = sim.now();
  remaining = 1000;
  for (int i = 0; i < 1000; i++) {
    const uint64_t block = rng.Uniform(kGiB / 4096);
    ssd.Write(block * 4096, Buffer::Zeros(4096), [&](Status s) {
      ASSERT_TRUE(s.ok());
      remaining--;
    });
  }
  sim.Run();
  ASSERT_EQ(remaining, 0);
  const Nanos rand_time = sim.now() - t0;

  EXPECT_LT(seq_time * 3, rand_time);
  EXPECT_GT(ssd.stats().sequential_writes, 900u);
}

TEST(SimSsd, RandomWriteIopsNearRated) {
  Simulator sim;
  SimSsd ssd(&sim, kGiB, SsdParams::P3700());
  Rng rng(13);
  constexpr int kOps = 20000;
  int done = 0;
  // Closed loop at queue depth 32.
  std::function<void()> issue = [&]() {
    if (done + 32 > kOps) {
      return;
    }
    const uint64_t block = rng.Uniform(kGiB / 4096);
    ssd.Write(block * 4096, Buffer::Zeros(4096), [&](Status s) {
      ASSERT_TRUE(s.ok());
      done++;
      issue();
    });
  };
  for (int i = 0; i < 32; i++) {
    issue();
  }
  sim.Run();
  const double iops = done / ToSeconds(sim.now());
  EXPECT_NEAR(iops, 90000.0, 15000.0);  // rated 90K random-write IOPS
}

TEST(SimSsd, FlushMakesPrecedingWritesDurable) {
  Simulator sim;
  SimSsd ssd(&sim, kMiB, SsdParams::P3700());
  Buffer data = Pattern(4096, 77);
  bool flushed = false;
  ssd.Write(0, data, [](Status) {});
  ssd.Flush([&](Status s) {
    ASSERT_TRUE(s.ok());
    flushed = true;
  });
  sim.Run();
  ASSERT_TRUE(flushed);
  ssd.PowerFail();
  auto r = ReadSync(&sim, &ssd, 0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
}

}  // namespace
}  // namespace lsvd
