// Shared helpers for driving LSVD components synchronously in tests.
#ifndef TESTS_LSVD_TEST_UTIL_H_
#define TESTS_LSVD_TEST_UTIL_H_

#include <optional>
#include <utility>

#include "src/lsvd/client_host.h"
#include "src/lsvd/lsvd_disk.h"
#include "src/objstore/mem_object_store.h"
#include "src/sim/simulator.h"
#include "src/util/buffer.h"
#include "src/util/rng.h"

namespace lsvd {

// Deterministic non-zero test payload (seeded per call site).
inline Buffer TestPattern(uint64_t len, uint64_t seed) {
  std::vector<uint8_t> bytes(len);
  Rng rng(seed);
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(rng.Next());
  }
  if (!bytes.empty() && bytes[0] == 0) {
    bytes[0] = 1;  // ensure the buffer is not an all-zero run
  }
  return Buffer::FromBytes(bytes);
}

inline Status WriteSync(Simulator* sim, LsvdDisk* disk, uint64_t off,
                        Buffer data) {
  std::optional<Status> result;
  disk->Write(off, std::move(data), [&](Status s) { result = s; });
  while (!result.has_value() && sim->Step()) {
  }
  return result.value_or(Status::Unavailable("write never completed"));
}

inline Result<Buffer> ReadSync(Simulator* sim, LsvdDisk* disk, uint64_t off,
                               uint64_t len) {
  std::optional<Result<Buffer>> result;
  disk->Read(off, len, [&](Result<Buffer> r) { result = std::move(r); });
  while (!result.has_value() && sim->Step()) {
  }
  if (!result.has_value()) {
    return Status::Unavailable("read never completed");
  }
  return std::move(*result);
}

inline Status TrimSync(Simulator* sim, LsvdDisk* disk, uint64_t off,
                       uint64_t len) {
  std::optional<Status> result;
  disk->Trim(off, len, [&](Status s) { result = s; });
  while (!result.has_value() && sim->Step()) {
  }
  return result.value_or(Status::Unavailable("trim never completed"));
}

inline Status FlushSync(Simulator* sim, LsvdDisk* disk) {
  std::optional<Status> result;
  disk->Flush([&](Status s) { result = s; });
  while (!result.has_value() && sim->Step()) {
  }
  return result.value_or(Status::Unavailable("flush never completed"));
}

inline Status DrainSync(Simulator* sim, LsvdDisk* disk) {
  std::optional<Status> result;
  disk->Drain([&](Status s) { result = s; });
  while (!result.has_value() && sim->Step()) {
  }
  return result.value_or(Status::Unavailable("drain never completed"));
}

inline Status OpenSync(Simulator* sim, LsvdDisk* disk,
                       void (LsvdDisk::*open)(std::function<void(Status)>)) {
  std::optional<Status> result;
  (disk->*open)([&](Status s) { result = s; });
  while (!result.has_value() && sim->Step()) {
  }
  return result.value_or(Status::Unavailable("open never completed"));
}

// A small world: one simulator, host, in-memory object store.
struct TestWorld {
  Simulator sim;
  ClientHost host;
  MemObjectStore store;

  explicit TestWorld(ClientHostConfig hc = InstantHostConfig())
      : host(&sim, hc), store(&sim) {}

  static ClientHostConfig InstantHostConfig() {
    ClientHostConfig hc;
    hc.ssd_capacity = 8 * kGiB;
    hc.ssd = SsdParams::Instant();
    return hc;
  }

  static LsvdConfig SmallVolumeConfig() {
    LsvdConfig config;
    config.volume_name = "vol";
    config.volume_size = 64 * kMiB;
    config.write_cache_size = 32 * kMiB;
    config.read_cache_size = 32 * kMiB;
    config.batch_bytes = kMiB;
    config.checkpoint_interval_objects = 8;
    // Keep software overheads zero in functional tests.
    config.costs = StageCosts{0, 0, 0, 0, 0, 0, 0, 0, 0};
    config.pass_through_ssd = false;
    return config;
  }
};

}  // namespace lsvd

#endif  // TESTS_LSVD_TEST_UTIL_H_
