// Unit tests for src/util: CRC32C, Buffer, Histogram, Rng, Table, Status.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/buffer.h"
#include "src/util/crc32c.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/table.h"
#include "src/util/units.h"

namespace lsvd {
namespace {

// --- CRC32C ---

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // 32 bytes of 0xFF.
  std::vector<uint8_t> ffs(32, 0xFF);
  EXPECT_EQ(Crc32c(ffs.data(), ffs.size()), 0x62A8AB43u);
  // Ascending 0..31.
  std::vector<uint8_t> asc(32);
  for (int i = 0; i < 32; i++) {
    asc[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  }
  EXPECT_EQ(Crc32c(asc.data(), asc.size()), 0x46DD794Eu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  std::string data = "log-structured virtual disk";
  const uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t crc = 0;
  for (size_t i = 0; i < data.size(); i += 5) {
    const size_t n = std::min<size_t>(5, data.size() - i);
    crc = Crc32cExtend(crc, data.data() + i, n);
  }
  EXPECT_EQ(crc, whole);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(Crc32c, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(100, 0xAB);
  const uint32_t clean = Crc32c(data.data(), data.size());
  data[50] ^= 1;
  EXPECT_NE(Crc32c(data.data(), data.size()), clean);
}

// --- Buffer ---

TEST(Buffer, ZeroRunsAreCheap) {
  Buffer b = Buffer::Zeros(10 * kGiB);
  EXPECT_EQ(b.size(), 10 * kGiB);
  EXPECT_TRUE(b.IsAllZeros());
  std::vector<uint8_t> probe(16, 0xFF);
  b.CopyTo(5 * kGiB, probe);
  for (uint8_t v : probe) {
    EXPECT_EQ(v, 0);
  }
}

TEST(Buffer, AppendAndCopy) {
  Buffer b;
  b.AppendBytes(std::vector<uint8_t>{1, 2, 3});
  b.AppendZeros(4);
  b.AppendBytes(std::vector<uint8_t>{9});
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b.ToBytes(), (std::vector<uint8_t>{1, 2, 3, 0, 0, 0, 0, 9}));
}

TEST(Buffer, SliceSharesAndIsCorrect) {
  Buffer b;
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < 100; i++) {
    data[i] = static_cast<uint8_t>(i);
  }
  b.AppendBytes(data);
  b.AppendZeros(50);
  b.AppendBytes(data);

  Buffer s = b.Slice(90, 70);  // last 10 real, 50 zeros, first 10 real
  auto bytes = s.ToBytes();
  ASSERT_EQ(bytes.size(), 70u);
  EXPECT_EQ(bytes[0], 90);
  EXPECT_EQ(bytes[9], 99);
  EXPECT_EQ(bytes[10], 0);
  EXPECT_EQ(bytes[59], 0);
  EXPECT_EQ(bytes[60], 0);  // data[0]
  EXPECT_EQ(bytes[69], 9);  // data[9]
}

TEST(Buffer, AllZeroBytesStoredAsZeroRun) {
  Buffer b;
  std::vector<uint8_t> zeros(4096, 0);
  b.AppendBytes(zeros);
  EXPECT_TRUE(b.IsAllZeros());
}

TEST(Buffer, SharedSpanReturnsExactWholeChunkOnly) {
  auto block = std::make_shared<const std::vector<uint8_t>>(
      std::vector<uint8_t>{1, 2, 3, 4});
  Buffer b;
  b.AppendZeros(4);
  b.AppendShared(block);
  b.AppendBytes(std::vector<uint8_t>{9, 9, 9, 9});

  // Exactly the shared chunk: same backing vector, no copy.
  EXPECT_EQ(b.SharedSpan(4, 4).get(), block.get());
  // Zero runs, partial chunks, chunk-crossing ranges, and the trailing
  // copied chunk (whose vector matches the range but was appended by copy —
  // still a valid share of its own backing storage) behave as specified.
  EXPECT_EQ(b.SharedSpan(0, 4), nullptr);     // zero run
  EXPECT_EQ(b.SharedSpan(4, 2), nullptr);     // proper prefix of the chunk
  EXPECT_EQ(b.SharedSpan(5, 3), nullptr);     // proper suffix of the chunk
  EXPECT_EQ(b.SharedSpan(2, 4), nullptr);     // crosses a chunk boundary
  ASSERT_NE(b.SharedSpan(8, 4), nullptr);     // AppendBytes chunk, whole
  EXPECT_EQ(*b.SharedSpan(8, 4), (std::vector<uint8_t>{9, 9, 9, 9}));

  // A slice that lands exactly on the shared chunk still shares it.
  Buffer s = b.Slice(4, 4);
  EXPECT_EQ(s.SharedSpan(0, 4).get(), block.get());
}

TEST(Buffer, CrcMatchesMaterialized) {
  Buffer b;
  b.AppendBytes(std::vector<uint8_t>{5, 6, 7});
  b.AppendZeros(1000);
  b.AppendBytes(std::vector<uint8_t>{8});
  auto bytes = b.ToBytes();
  EXPECT_EQ(b.Crc(), Crc32c(bytes.data(), bytes.size()));
}

TEST(Buffer, Equality) {
  Buffer a = Buffer::FromString("hello");
  Buffer b;
  b.AppendBytes(std::vector<uint8_t>{'h', 'e'});
  b.AppendBytes(std::vector<uint8_t>{'l', 'l', 'o'});
  EXPECT_EQ(a, b);
  Buffer c = Buffer::FromString("hellx");
  EXPECT_FALSE(a == c);
  EXPECT_EQ(Buffer::Zeros(100), Buffer::Zeros(100));
  EXPECT_FALSE(Buffer::Zeros(100) == Buffer::Zeros(101));
}

// --- Histogram ---

TEST(Histogram, BucketsAndPercentiles) {
  Histogram h;
  for (int i = 0; i < 100; i++) {
    h.Add(16, 16);  // 100 x 16
  }
  h.Add(1024, 1024);
  EXPECT_EQ(h.total_count(), 101u);
  EXPECT_EQ(h.total_weight(), 100u * 16 + 1024);
  EXPECT_EQ(h.BucketWeight(4), 100u * 16);   // [16, 32)
  EXPECT_EQ(h.BucketWeight(10), 1024u);      // [1024, 2048)
  EXPECT_LT(h.Percentile(0.5), 32.0);
  EXPECT_GE(h.Percentile(0.5), 16.0);
  EXPECT_NEAR(h.MeanValue(), (100.0 * 16 + 1024) / 101, 1e-9);
}

TEST(Histogram, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.MeanValue(), 0.0);
  EXPECT_EQ(h.BucketWeight(3), 0u);
  EXPECT_EQ(h.BucketCount(3), 0u);
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 0.0);
  EXPECT_EQ(h.value_sum(), 0.0);
}

TEST(Histogram, SingleBucketPercentilesInterpolate) {
  Histogram h;
  for (int i = 0; i < 10; i++) {
    h.Add(16);  // all samples in [16, 32)
  }
  // Every percentile must land inside (or at the top edge of) the bucket.
  for (const double f : {0.01, 0.25, 0.50, 0.99, 1.0}) {
    EXPECT_GE(h.Percentile(f), 16.0) << "fraction " << f;
    EXPECT_LE(h.Percentile(f), 32.0) << "fraction " << f;
  }
  // Linear interpolation within the bucket: p50 is the midpoint.
  EXPECT_NEAR(h.Percentile(0.5), 24.0, 1e-9);
  EXPECT_EQ(h.BucketCount(4), 10u);
  EXPECT_EQ(h.total_count(), 10u);
}

TEST(Histogram, LogLinearBucketGeometry) {
  // sub_bits=2: unit buckets below 4; octave [2^m, 2^(m+1)) splits into 4
  // sub-buckets of width 2^(m-2).
  EXPECT_EQ(HistogramBucketLower(0, 2), 0.0);
  EXPECT_EQ(HistogramBucketLower(3, 2), 3.0);
  EXPECT_EQ(HistogramBucketLower(4, 2), 4.0);   // unit/octave seam at 2^k
  EXPECT_EQ(HistogramBucketLower(7, 2), 7.0);   // [4,8): width 1
  EXPECT_EQ(HistogramBucketLower(8, 2), 8.0);   // [8,16): width 2
  EXPECT_EQ(HistogramBucketLower(9, 2), 10.0);
  EXPECT_EQ(HistogramBucketLower(12, 2), 16.0);  // [16,32): width 4
  EXPECT_EQ(HistogramBucketLower(13, 2), 20.0);

  Histogram h(/*sub_bits=*/2);
  EXPECT_EQ(h.sub_bits(), 2);
  h.Add(9);   // [8,10) -> bucket 8
  h.Add(10);  // [10,12) -> bucket 9
  h.Add(21);  // [20,24) -> bucket 13
  EXPECT_EQ(h.BucketCount(8), 1u);
  EXPECT_EQ(h.BucketCount(9), 1u);
  EXPECT_EQ(h.BucketCount(13), 1u);

  // Default geometry is unchanged: same samples, octave-wide buckets.
  Histogram legacy;
  EXPECT_EQ(legacy.sub_bits(), 0);
  legacy.Add(9);
  legacy.Add(10);
  legacy.Add(21);
  EXPECT_EQ(legacy.BucketCount(3), 2u);  // [8,16)
  EXPECT_EQ(legacy.BucketCount(4), 1u);  // [16,32)
}

TEST(Histogram, LogLinearBoundaryInterpolation) {
  // Regression: percentile interpolation must use the log-linear bucket's
  // own bounds, not the enclosing octave. All mass in [1024, 1040) with
  // sub_bits=6 (octave width 1024, sub-bucket width 16): every percentile
  // stays inside the 16-wide sub-bucket and p50 is its midpoint.
  Histogram h(/*sub_bits=*/6);
  for (int i = 0; i < 100; i++) {
    h.Add(1030);
  }
  for (const double f : {0.01, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.Percentile(f), 1024.0) << "fraction " << f;
    EXPECT_LE(h.Percentile(f), 1040.0) << "fraction " << f;
  }
  EXPECT_NEAR(h.Percentile(0.5), 1032.0, 1e-9);

  // Equal mass in two adjacent sub-buckets: the median lands exactly on
  // their shared boundary.
  Histogram h2(/*sub_bits=*/2);
  h2.Add(8);
  h2.Add(9);
  h2.Add(10);
  h2.Add(11);
  EXPECT_DOUBLE_EQ(h2.Percentile(0.5), 10.0);

  // Bounded relative error: 1000 identical samples, p99.9 within 2^-6.
  Histogram fine(/*sub_bits=*/6);
  for (int i = 0; i < 1000; i++) {
    fine.Add(100000);
  }
  EXPECT_NEAR(fine.Percentile(0.999), 100000.0, 100000.0 / 64 + 1e-9);
}

TEST(Histogram, PercentileIsCountBasedNotWeightBased) {
  Histogram h;
  // One heavy sample at 4, many light samples at 1024: count percentiles
  // must follow the sample counts, ignoring the weight skew.
  h.Add(4, /*weight=*/100000);
  for (int i = 0; i < 99; i++) {
    h.Add(1024, /*weight=*/1);
  }
  EXPECT_GE(h.Percentile(0.5), 1024.0);
  EXPECT_LT(h.Percentile(0.5), 2048.0);
  EXPECT_EQ(h.BucketWeight(2), 100000u);  // [4, 8)
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.total_weight(), 100000u + 99);
  EXPECT_NEAR(h.value_sum(), 4.0 + 99.0 * 1024.0, 1e-9);
}

// --- Rng ---

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  Rng c(43);
  bool diverged = false;
  for (int i = 0; i < 100; i++) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; i++) {
    const uint64_t v = r.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SkewedFavorsHotRegion) {
  Rng r(7);
  int hot = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; i++) {
    if (r.Skewed(1000, 0.1, 0.9) < 100) {
      hot++;
    }
  }
  // ~90% + 10% * 10% ≈ 91% of accesses land in the hot 10%.
  EXPECT_GT(hot, kTrials * 80 / 100);
}

TEST(Rng, ExponentialMean) {
  Rng r(3);
  double sum = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; i++) {
    sum += r.Exponential(5.0);
  }
  EXPECT_NEAR(sum / kTrials, 5.0, 0.3);
}

// --- Status / Result ---

TEST(Status, Basics) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status s = Status::NotFound("obj.17");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: obj.17");
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::Corruption("bad crc"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kCorruption);
}

// --- Table ---

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "iops"});
  t.AddRow({"lsvd", "50000"});
  t.AddRow({"rbd", "12000"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("50000"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::FmtBytes(1536 * kKiB), "1.50 MiB");
  EXPECT_EQ(Table::FmtCount(1234567), "1,234,567");
}

// --- Units ---

TEST(Units, Conversions) {
  EXPECT_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_EQ(FromSeconds(2.5), 2 * kSecond + 500 * kMillisecond);
  EXPECT_EQ(BytesPerSecond(kMiB, kSecond), static_cast<double>(kMiB));
  EXPECT_EQ(BytesPerSecond(kMiB, 0), 0.0);
}

}  // namespace
}  // namespace lsvd
