// Cross-module integration tests: multiple volumes sharing one host, GC
// interacting with crashes / snapshots / replication, write-cache
// backpressure end to end, and baseline writeback synchronization.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/baseline/bcache_device.h"
#include "src/baseline/rbd_disk.h"
#include "src/lsvd/lsvd_disk.h"
#include "src/lsvd/replicator.h"
#include "src/objstore/sim_object_store.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

TEST(Integration, TwoVolumesOnOneHostAreIsolated) {
  TestWorld world;
  LsvdConfig ca = TestWorld::SmallVolumeConfig();
  ca.volume_name = "alpha";
  LsvdConfig cb = TestWorld::SmallVolumeConfig();
  cb.volume_name = "beta";
  LsvdDisk a(&world.host, &world.store, ca);
  LsvdDisk b(&world.host, &world.store, cb);
  ASSERT_TRUE(OpenSync(&world.sim, &a, &LsvdDisk::Create).ok());
  ASSERT_TRUE(OpenSync(&world.sim, &b, &LsvdDisk::Create).ok());

  // Interleaved writes to the same vLBAs with different contents.
  for (int i = 0; i < 20; i++) {
    const uint64_t off = static_cast<uint64_t>(i) * 64 * kKiB;
    ASSERT_TRUE(WriteSync(&world.sim, &a, off, TestPattern(64 * kKiB,
                                                           1000 + i))
                    .ok());
    ASSERT_TRUE(WriteSync(&world.sim, &b, off, TestPattern(64 * kKiB,
                                                           2000 + i))
                    .ok());
  }
  ASSERT_TRUE(DrainSync(&world.sim, &a).ok());
  ASSERT_TRUE(DrainSync(&world.sim, &b).ok());

  for (int i = 0; i < 20; i++) {
    const uint64_t off = static_cast<uint64_t>(i) * 64 * kKiB;
    auto ra = ReadSync(&world.sim, &a, off, 64 * kKiB);
    auto rb = ReadSync(&world.sim, &b, off, 64 * kKiB);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(*ra, TestPattern(64 * kKiB, 1000 + i));
    EXPECT_EQ(*rb, TestPattern(64 * kKiB, 2000 + i));
  }
  // Object streams are disjoint by name.
  EXPECT_FALSE(world.store.List("alpha.d.").empty());
  EXPECT_FALSE(world.store.List("beta.d.").empty());
}

TEST(Integration, GcThenCacheLossRecoversConsistently) {
  TestWorld world;
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.checkpoint_interval_objects = 4;
  LsvdDisk disk(&world.host, &world.store, config);
  ASSERT_TRUE(OpenSync(&world.sim, &disk, &LsvdDisk::Create).ok());

  // Heavy overwriting of a small region to force GC.
  Rng rng(31);
  std::map<uint64_t, uint64_t> content;
  for (int i = 0; i < 120; i++) {
    const uint64_t slot = rng.Uniform(8);
    const uint64_t seed = 3000 + static_cast<uint64_t>(i);
    ASSERT_TRUE(WriteSync(&world.sim, &disk, slot * 256 * kKiB,
                          TestPattern(256 * kKiB, seed))
                    .ok());
    content[slot] = seed;
  }
  ASSERT_TRUE(DrainSync(&world.sim, &disk).ok());
  ASSERT_GT(disk.backend().stats().gc_objects_cleaned, 0u);
  ASSERT_GT(disk.backend().stats().objects_deleted, 0u);

  // Total cache loss; recover from the object store alone.
  disk.Kill();
  world.host.ssd()->DiscardAll();
  world.sim.Run();
  ClientHost host2(&world.sim, TestWorld::InstantHostConfig());
  LsvdDisk recovered(&host2, &world.store, config);
  ASSERT_TRUE(OpenSync(&world.sim, &recovered, &LsvdDisk::OpenCacheLost).ok());

  for (const auto& [slot, seed] : content) {
    auto r = ReadSync(&world.sim, &recovered, slot * 256 * kKiB, 256 * kKiB);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, TestPattern(256 * kKiB, seed)) << "slot " << slot;
  }
}

TEST(Integration, SnapshotSurvivesGcChurnAndMounts) {
  TestWorld world;
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.checkpoint_interval_objects = 4;
  LsvdDisk disk(&world.host, &world.store, config);
  ASSERT_TRUE(OpenSync(&world.sim, &disk, &LsvdDisk::Create).ok());

  // Known state at snapshot time.
  for (int slot = 0; slot < 4; slot++) {
    ASSERT_TRUE(WriteSync(&world.sim, &disk,
                          static_cast<uint64_t>(slot) * 256 * kKiB,
                          TestPattern(256 * kKiB, 4000 + slot))
                    .ok());
  }
  std::optional<Result<uint64_t>> snap;
  disk.Snapshot([&](Result<uint64_t> r) { snap = std::move(r); });
  world.sim.Run();
  ASSERT_TRUE(snap->ok());

  // Churn hard so GC wants to delete snapshot-era objects.
  Rng rng(37);
  for (int i = 0; i < 150; i++) {
    ASSERT_TRUE(WriteSync(&world.sim, &disk, rng.Uniform(8) * 256 * kKiB,
                          TestPattern(256 * kKiB, 5000 + i))
                    .ok());
  }
  ASSERT_TRUE(DrainSync(&world.sim, &disk).ok());
  ASSERT_GT(disk.backend().stats().gc_objects_cleaned, 0u);
  EXPECT_GT(disk.backend().stats().deferred_deletes, 0u);

  // The snapshot still mounts with the exact pre-churn contents.
  LsvdConfig view_config = config;
  view_config.open_limit_seq = snap->value();
  LsvdDisk view(&world.host, &world.store, view_config);
  ASSERT_TRUE(OpenSync(&world.sim, &view, &LsvdDisk::OpenCacheLost).ok());
  for (int slot = 0; slot < 4; slot++) {
    auto r = ReadSync(&world.sim, &view,
                      static_cast<uint64_t>(slot) * 256 * kKiB, 256 * kKiB);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, TestPattern(256 * kKiB, 4000 + slot)) << "slot " << slot;
  }
}

TEST(Integration, WriteCacheBackpressureEndToEnd) {
  // A tiny write cache against a slow backend: writes must stall and resume
  // rather than fail, and all data must be correct afterwards.
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 8 * kGiB;
  hc.ssd = SsdParams::P3700();
  ClientHost host(&sim, hc);
  BackendCluster cluster(&sim, ClusterConfig::HddPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.volume_size = 256 * kMiB;
  config.write_cache_size = 24 * kMiB;  // tiny: forces stalls
  config.batch_bytes = 2 * kMiB;
  config.costs = StageCosts{};
  config.pass_through_ssd = true;
  LsvdDisk disk(&host, &store, config);
  ASSERT_TRUE(OpenSync(&sim, &disk, &LsvdDisk::Create).ok());

  int acked = 0;
  constexpr int kWrites = 200;
  for (int i = 0; i < kWrites; i++) {
    disk.Write((static_cast<uint64_t>(i) % 200) * kMiB,
               Buffer::Zeros(512 * kKiB), [&](Status s) {
                 ASSERT_TRUE(s.ok());
                 acked++;
               });
  }
  sim.Run();
  EXPECT_EQ(acked, kWrites);
  EXPECT_GT(disk.write_cache().stats().stalled_appends, 0u);
  ASSERT_TRUE(DrainSync(&sim, &disk).ok());
  EXPECT_TRUE(disk.write_cache().fully_synced());
}

TEST(Integration, ReplicationRacesGcAndReplicaStillMounts) {
  TestWorld world;
  MemObjectStore replica(&world.sim);
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.checkpoint_interval_objects = 4;
  LsvdDisk disk(&world.host, &world.store, config);
  ASSERT_TRUE(OpenSync(&world.sim, &disk, &LsvdDisk::Create).ok());

  ReplicatorConfig rc;
  rc.volume_name = config.volume_name;
  rc.min_age = 0;  // copy eagerly: maximizes the race with GC deletion
  Replicator rep(&world.sim, &world.store, &replica, rc);

  Rng rng(41);
  std::map<uint64_t, uint64_t> content;
  for (int round = 0; round < 25; round++) {
    for (int i = 0; i < 6; i++) {
      const uint64_t slot = rng.Uniform(8);
      const uint64_t seed = 6000 + static_cast<uint64_t>(round * 10 + i);
      ASSERT_TRUE(WriteSync(&world.sim, &disk, slot * 256 * kKiB,
                            TestPattern(256 * kKiB, seed))
                      .ok());
      content[slot] = seed;
    }
    rep.PollOnce([] {});
    world.sim.Run();
  }
  ASSERT_TRUE(DrainSync(&world.sim, &disk).ok());
  std::optional<Status> ck;
  disk.backend().WriteCheckpoint([&](Status s) { ck = s; });
  world.sim.Run();
  ASSERT_TRUE(ck->ok());
  rep.PollOnce([] {});
  world.sim.Run();

  // The replica mounts to a consistent (possibly older) image.
  ClientHost host2(&world.sim, TestWorld::InstantHostConfig());
  LsvdDisk mounted(&host2, &replica, config);
  ASSERT_TRUE(OpenSync(&world.sim, &mounted, &LsvdDisk::OpenCacheLost).ok());
  EXPECT_GT(mounted.backend().applied_seq(), 0u);
  // Every mapped byte reads without error (no dangling object references).
  for (uint64_t slot = 0; slot < 8; slot++) {
    auto r = ReadSync(&world.sim, &mounted, slot * 256 * kKiB, 256 * kKiB);
    ASSERT_TRUE(r.ok()) << "slot " << slot << ": "
                        << r.status().ToString();
  }
}

TEST(Integration, BcacheWritebackAllSyncsImageForMigration) {
  // §4.4's migration scenario on the baseline: after WritebackAll, the RBD
  // image must equal the cache view exactly.
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 4 * kGiB;
  hc.ssd = SsdParams::Instant();
  ClientHost host(&sim, hc);
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  RbdDisk rbd(&sim, &cluster, &link, kGiB, RbdConfig{});
  const uint64_t cache_size = 128 * kMiB;
  BcacheDevice bcache(&host, &rbd, *host.AllocRegion(cache_size), cache_size,
                      BcacheConfig{});

  Rng rng(43);
  std::map<uint64_t, uint64_t> content;
  for (int i = 0; i < 60; i++) {
    const uint64_t slot = rng.Uniform(32);
    const uint64_t seed = 7000 + static_cast<uint64_t>(i);
    std::optional<Status> s;
    bcache.Write(slot * 64 * kKiB, TestPattern(64 * kKiB, seed),
                 [&](Status st) { s = st; });
    sim.Run();
    ASSERT_TRUE(s->ok());
    content[slot] = seed;
  }
  bool done = false;
  bcache.WritebackAll([&] { done = true; });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(bcache.dirty_bytes(), 0u);
  for (const auto& [slot, seed] : content) {
    std::optional<Result<Buffer>> r;
    rbd.Read(slot * 64 * kKiB, 64 * kKiB,
             [&](Result<Buffer> rr) { r = std::move(rr); });
    sim.Run();
    ASSERT_TRUE(r->ok());
    EXPECT_EQ(r->value(), TestPattern(64 * kKiB, seed)) << "slot " << slot;
  }
}

TEST(Integration, RepeatedCrashRecoverCycles) {
  // §3.3: "In the case of further failure, the steps may be repeated
  // without risk of inconsistency." Crash and recover several times.
  TestWorld world;
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  auto disk = std::make_unique<LsvdDisk>(&world.host, &world.store, config);
  ASSERT_TRUE(OpenSync(&world.sim, disk.get(), &LsvdDisk::Create).ok());

  std::map<uint64_t, uint64_t> content;
  uint64_t seed = 8000;
  for (int cycle = 0; cycle < 4; cycle++) {
    for (int i = 0; i < 15; i++) {
      const uint64_t slot = (seed * 7 + static_cast<uint64_t>(i)) % 32;
      ASSERT_TRUE(WriteSync(&world.sim, disk.get(), slot * 64 * kKiB,
                            TestPattern(64 * kKiB, seed))
                      .ok());
      content[slot] = seed;
      seed++;
    }
    ASSERT_TRUE(FlushSync(&world.sim, disk.get()).ok());

    const DiskRegions regions = disk->regions();
    disk->Kill();
    world.host.ssd()->PowerFail();
    world.sim.Run();
    disk = std::make_unique<LsvdDisk>(&world.host, &world.store, config,
                                      regions);
    ASSERT_TRUE(
        OpenSync(&world.sim, disk.get(), &LsvdDisk::OpenAfterCrash).ok())
        << "cycle " << cycle;

    for (const auto& [slot, s] : content) {
      auto r = ReadSync(&world.sim, disk.get(), slot * 64 * kKiB, 64 * kKiB);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(*r, TestPattern(64 * kKiB, s))
          << "cycle " << cycle << " slot " << slot;
    }
  }
}

}  // namespace
}  // namespace lsvd
