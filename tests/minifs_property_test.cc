// Property test: minifs under a long random sequence of create / delete /
// fsync / remount operations must always match a reference model, and fsck
// must always be clean — including after simulated crashes, where the
// surviving files must be a subset consistent with the journal.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/minifs/minifs.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

class MiniFsProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  MiniFsProperty() {
    config_ = TestWorld::SmallVolumeConfig();
    config_.volume_size = 256 * kMiB;
    disk_ = std::make_unique<LsvdDisk>(&world_.host, &world_.store, config_);
    EXPECT_TRUE(OpenSync(&world_.sim, disk_.get(), &LsvdDisk::Create).ok());
    MiniFsGeometry geo;
    geo.max_files = 2048;
    std::optional<Status> s;
    MiniFs::Format(&world_.sim, disk_.get(), geo, [&](Status st) { s = st; });
    world_.sim.Run();
    EXPECT_TRUE(s.has_value() && s->ok());
    fs_ = MountNow();
  }

  std::shared_ptr<MiniFs> MountNow() {
    std::optional<Result<std::shared_ptr<MiniFs>>> r;
    MiniFs::Mount(&world_.sim, disk_.get(),
                  [&](Result<std::shared_ptr<MiniFs>> rr) {
                    r = std::move(rr);
                  });
    world_.sim.Run();
    EXPECT_TRUE(r.has_value() && r->ok());
    return r->ok() ? std::move(*r).value() : nullptr;
  }

  TestWorld world_;
  LsvdConfig config_;
  std::unique_ptr<LsvdDisk> disk_;
  std::shared_ptr<MiniFs> fs_;
};

TEST_P(MiniFsProperty, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  std::map<std::string, uint64_t> model;   // durable (fsynced) name -> seed
  std::map<std::string, uint64_t> staged;  // current in-memory view
  uint64_t next_id = 0;

  for (int step = 0; step < 150; step++) {
    const int op = static_cast<int>(rng.Uniform(10));
    if (op < 5) {  // create
      const std::string name = "f" + std::to_string(next_id++);
      const uint64_t seed = 10000 + rng.Next() % 100000;
      const uint64_t size = 1 + rng.Uniform(40 * kKiB);
      std::optional<Status> s;
      fs_->CreateFile(name, TestPattern(size, seed),
                      [&](Status st) { s = st; });
      world_.sim.Run();
      ASSERT_TRUE(s->ok());
      staged[name] = seed;
    } else if (op < 7 && !staged.empty()) {  // delete
      auto it = staged.begin();
      std::advance(it, static_cast<long>(rng.Uniform(staged.size())));
      std::optional<Status> s;
      fs_->DeleteFile(it->first, [&](Status st) { s = st; });
      world_.sim.Run();
      ASSERT_TRUE(s->ok());
      staged.erase(it);
    } else if (op < 8 && !staged.empty()) {  // read + verify content
      auto it = staged.begin();
      std::advance(it, static_cast<long>(rng.Uniform(staged.size())));
      std::optional<Result<Buffer>> r;
      fs_->ReadFile(it->first, [&](Result<Buffer> rr) { r = std::move(rr); });
      world_.sim.Run();
      ASSERT_TRUE(r->ok());
      ASSERT_EQ(r->value().Crc(), TestPattern(r->value().size(),
                                              it->second)
                                      .Crc());
    } else if (op < 9) {  // fsync: staged becomes durable
      std::optional<Status> s;
      fs_->Fsync([&](Status st) { s = st; });
      world_.sim.Run();
      ASSERT_TRUE(s->ok());
      model = staged;
    } else {  // clean remount: unsynced changes are lost
      fs_->Kill();
      fs_ = MountNow();
      ASSERT_NE(fs_, nullptr);
      // The recovered view must equal the last fsynced model.
      auto names = fs_->ListFiles();
      ASSERT_EQ(names.size(), model.size()) << "step " << step;
      for (const auto& [name, seed] : model) {
        std::optional<Result<Buffer>> r;
        fs_->ReadFile(name, [&](Result<Buffer> rr) { r = std::move(rr); });
        world_.sim.Run();
        ASSERT_TRUE(r.has_value() && r->ok())
            << "step " << step << " file " << name;
      }
      staged = model;
    }
  }

  // Final: fsync, then a full fsck must be clean with exactly the durable
  // files intact.
  std::optional<Status> s;
  fs_->Fsync([&](Status st) { s = st; });
  world_.sim.Run();
  ASSERT_TRUE(s->ok());
  model = staged;
  fs_->Kill();
  std::optional<MiniFs::FsckReport> report;
  MiniFs::Fsck(&world_.sim, disk_.get(),
               [&](MiniFs::FsckReport r) { report = std::move(r); });
  world_.sim.Run();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->clean())
      << (report->errors.empty() ? "" : report->errors.front());
  EXPECT_EQ(report->files_found, model.size());
  EXPECT_EQ(report->files_intact, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniFsProperty,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace lsvd
