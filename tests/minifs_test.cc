// Unit and crash tests for minifs, the journaled mini filesystem used by the
// Table 4 experiments.
#include <gtest/gtest.h>

#include <optional>

#include "src/minifs/minifs.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

// Helpers driving minifs synchronously over a TestWorld LSVD disk.
class MiniFsTest : public ::testing::Test {
 protected:
  MiniFsTest() {
    config_ = TestWorld::SmallVolumeConfig();
    config_.volume_size = 256 * kMiB;
    disk_ = std::make_unique<LsvdDisk>(&world_.host, &world_.store, config_);
    EXPECT_TRUE(OpenSync(&world_.sim, disk_.get(), &LsvdDisk::Create).ok());
    MiniFsGeometry geo;
    geo.max_files = 4096;
    std::optional<Status> s;
    MiniFs::Format(&world_.sim, disk_.get(), geo,
                   [&](Status st) { s = st; });
    world_.sim.Run();
    EXPECT_TRUE(s.has_value() && s->ok()) << (s ? s->ToString() : "pending");
    fs_ = MountNow();
  }

  std::shared_ptr<MiniFs> MountNow() {
    std::optional<Result<std::shared_ptr<MiniFs>>> r;
    MiniFs::Mount(&world_.sim, disk_.get(),
                  [&](Result<std::shared_ptr<MiniFs>> rr) {
                    r = std::move(rr);
                  });
    world_.sim.Run();
    EXPECT_TRUE(r.has_value());
    EXPECT_TRUE(r->ok()) << r->status().ToString();
    return r->ok() ? std::move(*r).value() : nullptr;
  }

  Status Create(const std::string& name, Buffer content) {
    std::optional<Status> s;
    fs_->CreateFile(name, std::move(content), [&](Status st) { s = st; });
    world_.sim.Run();
    return s.value_or(Status::Unavailable("create hung"));
  }

  Status Fsync() {
    std::optional<Status> s;
    fs_->Fsync([&](Status st) { s = st; });
    world_.sim.Run();
    return s.value_or(Status::Unavailable("fsync hung"));
  }

  Result<Buffer> ReadF(const std::string& name) {
    std::optional<Result<Buffer>> r;
    fs_->ReadFile(name, [&](Result<Buffer> rr) { r = std::move(rr); });
    world_.sim.Run();
    if (!r.has_value()) {
      return Status::Unavailable("read hung");
    }
    return std::move(*r);
  }

  MiniFs::FsckReport FsckNow() {
    std::optional<MiniFs::FsckReport> report;
    MiniFs::Fsck(&world_.sim, disk_.get(),
                 [&](MiniFs::FsckReport r) { report = std::move(r); });
    world_.sim.Run();
    EXPECT_TRUE(report.has_value());
    return report.value_or(MiniFs::FsckReport{});
  }

  TestWorld world_;
  LsvdConfig config_;
  std::unique_ptr<LsvdDisk> disk_;
  std::shared_ptr<MiniFs> fs_;
};

TEST_F(MiniFsTest, CreateReadRoundTrip) {
  Buffer content = TestPattern(10000, 1);  // unaligned size
  ASSERT_TRUE(Create("hello", content).ok());
  auto r = ReadF("hello");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, content);
  EXPECT_EQ(fs_->file_count(), 1u);
}

TEST_F(MiniFsTest, EmptyAndLargeFiles) {
  ASSERT_TRUE(Create("empty", Buffer()).ok());
  Buffer big = TestPattern(300 * kKiB, 2);  // needs indirect blocks
  ASSERT_TRUE(Create("big", big).ok());
  auto r = ReadF("big");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, big);
  auto e = ReadF("empty");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->size(), 0u);
}

TEST_F(MiniFsTest, DuplicateAndMissingNames) {
  ASSERT_TRUE(Create("a", TestPattern(100, 3)).ok());
  EXPECT_EQ(Create("a", TestPattern(100, 4)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ReadF("nope").status().code(), StatusCode::kNotFound);
  std::optional<Status> del;
  fs_->DeleteFile("nope", [&](Status s) { del = s; });
  world_.sim.Run();
  EXPECT_EQ(del->code(), StatusCode::kNotFound);
}

TEST_F(MiniFsTest, DeleteFreesAndNameReusable) {
  ASSERT_TRUE(Create("f", TestPattern(50000, 5)).ok());
  std::optional<Status> del;
  fs_->DeleteFile("f", [&](Status s) { del = s; });
  world_.sim.Run();
  ASSERT_TRUE(del->ok());
  EXPECT_EQ(fs_->file_count(), 0u);
  ASSERT_TRUE(Create("f", TestPattern(100, 6)).ok());
  auto r = ReadF("f");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(100, 6));
}

TEST_F(MiniFsTest, FsyncPersistsAcrossRemount) {
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(
        Create("file" + std::to_string(i), TestPattern(12 * kKiB, 10 + i))
            .ok());
  }
  ASSERT_TRUE(Fsync().ok());
  fs_->Kill();
  fs_ = MountNow();
  ASSERT_NE(fs_, nullptr);
  EXPECT_EQ(fs_->file_count(), 20u);
  auto r = ReadF("file7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(12 * kKiB, 17));
}

TEST_F(MiniFsTest, UnsyncedFilesLostOnRemountButConsistent) {
  ASSERT_TRUE(Create("durable", TestPattern(4096, 1)).ok());
  ASSERT_TRUE(Fsync().ok());
  ASSERT_TRUE(Create("volatile", TestPattern(4096, 2)).ok());
  // No fsync: the metadata for "volatile" was never journaled.
  fs_->Kill();
  fs_ = MountNow();
  ASSERT_NE(fs_, nullptr);
  EXPECT_EQ(fs_->file_count(), 1u);
  EXPECT_TRUE(ReadF("durable").ok());
}

TEST_F(MiniFsTest, FsckCleanOnHealthyImage) {
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(
        Create("f" + std::to_string(i), TestPattern(8 * kKiB, 100 + i)).ok());
  }
  ASSERT_TRUE(Fsync().ok());
  auto report = FsckNow();
  EXPECT_TRUE(report.mountable);
  EXPECT_TRUE(report.structurally_clean);
  EXPECT_EQ(report.files_found, 50u);
  EXPECT_EQ(report.files_intact, 50u);
  EXPECT_EQ(report.files_corrupt, 0u);
  EXPECT_TRUE(report.clean());
}

TEST_F(MiniFsTest, FsckDetectsLostData) {
  ASSERT_TRUE(Create("victim", TestPattern(16 * kKiB, 9)).ok());
  ASSERT_TRUE(Fsync().ok());
  fs_->Kill();
  auto report_before = FsckNow();
  ASSERT_EQ(report_before.files_intact, 1u);
  // Corrupt the device behind the filesystem's back: sweep 64 KiB windows of
  // garbage across the data area (its exact start depends on geometry; the
  // in-place metadata is checkpointed, so journal/inode-region damage alone
  // is masked) until fsck notices the file is gone or damaged.
  bool detected = false;
  for (uint64_t off = 4 * kMiB; off < 16 * kMiB && !detected;
       off += 64 * kKiB) {
    std::optional<Status> w;
    disk_->Write(off,
                 Buffer::FromBytes(std::vector<uint8_t>(64 * kKiB, 0xEE)),
                 [&](Status s) { w = s; });
    world_.sim.Run();
    ASSERT_TRUE(w->ok());
    auto report = FsckNow();
    if (!report.mountable || report.files_corrupt >= 1 ||
        report.files_intact == 0) {
      detected = true;
    }
  }
  EXPECT_TRUE(detected) << "fsck never detected the damaged file data";
}

TEST_F(MiniFsTest, FsckFailsOnBlankDevice) {
  // A never-formatted region is not mountable.
  LsvdConfig config2 = config_;
  config2.volume_name = "blank";
  LsvdDisk blank(&world_.host, &world_.store, config2);
  ASSERT_TRUE(OpenSync(&world_.sim, &blank, &LsvdDisk::Create).ok());
  std::optional<MiniFs::FsckReport> report;
  MiniFs::Fsck(&world_.sim, &blank,
               [&](MiniFs::FsckReport r) { report = std::move(r); });
  world_.sim.Run();
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->mountable);
}

TEST_F(MiniFsTest, ManyFilesSpillIntoIndirectDirBlocks) {
  // More files than fit the root dir's 12 direct blocks (12*128 = 1536).
  constexpr int kFiles = 1800;
  for (int i = 0; i < kFiles; i++) {
    ASSERT_TRUE(Create("n" + std::to_string(i), TestPattern(4096, 500 + i))
                    .ok());
    if (i % 200 == 0) {
      ASSERT_TRUE(Fsync().ok());
    }
  }
  ASSERT_TRUE(Fsync().ok());
  fs_->Kill();
  fs_ = MountNow();
  ASSERT_NE(fs_, nullptr);
  EXPECT_EQ(fs_->file_count(), kFiles);
  auto r = ReadF("n1700");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(4096, 500 + 1700));
  auto report = FsckNow();
  EXPECT_TRUE(report.clean())
      << (report.errors.empty() ? "" : report.errors.front());
}

// The LSVD consistency property end-to-end: crash with total cache loss mid
// file-copy; the recovered image must mount and every fsynced file must be
// intact (a consistent prefix).
TEST_F(MiniFsTest, LsvdCrashWithCacheLossKeepsPrefixConsistency) {
  constexpr int kFiles = 120;
  int synced_through = -1;
  for (int i = 0; i < kFiles; i++) {
    ASSERT_TRUE(Create("c" + std::to_string(i), TestPattern(16 * kKiB,
                                                            900 + i))
                    .ok());
    if (i % 10 == 9) {
      ASSERT_TRUE(Fsync().ok());
      synced_through = i;
    }
  }
  ASSERT_GT(synced_through, 50);

  // Crash: client dies, SSD cache is lost entirely.
  fs_->Kill();
  const LsvdConfig config = disk_->config();
  disk_->Kill();
  world_.host.ssd()->DiscardAll();
  world_.sim.Run();

  ClientHost host2(&world_.sim, TestWorld::InstantHostConfig());
  LsvdDisk recovered(&host2, &world_.store, config);
  ASSERT_TRUE(OpenSync(&world_.sim, &recovered, &LsvdDisk::OpenCacheLost).ok());

  std::optional<MiniFs::FsckReport> report;
  MiniFs::Fsck(&world_.sim, &recovered,
               [&](MiniFs::FsckReport r) { report = std::move(r); });
  world_.sim.Run();
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->mountable);
  EXPECT_TRUE(report->structurally_clean)
      << (report->errors.empty() ? "" : report->errors.front());
  EXPECT_EQ(report->files_corrupt, 0u);
  // Every fsynced file survived... but cache loss may lose a suffix of
  // batches; prefix consistency guarantees an earlier consistent state, so
  // the files found must be a prefix of creation order and all intact.
  EXPECT_EQ(report->files_intact, report->files_found);
}

}  // namespace
}  // namespace lsvd
