// Unit tests for asynchronous replication (§4.8) and the GC simulator used
// for Table 5.
#include <gtest/gtest.h>

#include <optional>

#include "src/lsvd/gc_sim.h"
#include "src/lsvd/lsvd_disk.h"
#include "src/lsvd/replicator.h"
#include "src/objstore/mem_object_store.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

TEST(Replicator, CopiesAgedObjectsOnly) {
  Simulator sim;
  MemObjectStore primary(&sim);
  MemObjectStore replica(&sim);
  ReplicatorConfig config;
  config.volume_name = "vol";
  config.min_age = 60 * kSecond;
  Replicator rep(&sim, &primary, &replica, config);

  std::optional<Status> s;
  primary.Put("vol.d.000000000001", Buffer::Zeros(4096),
              [&](Status st) { s = st; });
  sim.Run();
  ASSERT_TRUE(s->ok());

  // First poll registers the object but it is too young to copy.
  bool polled = false;
  rep.PollOnce([&] { polled = true; });
  sim.Run();
  ASSERT_TRUE(polled);
  EXPECT_EQ(rep.stats().objects_copied, 0u);
  EXPECT_EQ(replica.object_count(), 0u);

  // After aging past the threshold the next poll copies it.
  sim.RunUntil(sim.now() + 61 * kSecond);
  polled = false;
  rep.PollOnce([&] { polled = true; });
  sim.Run();
  ASSERT_TRUE(polled);
  EXPECT_EQ(rep.stats().objects_copied, 1u);
  EXPECT_EQ(replica.object_count(), 1u);
  // Idempotent: re-polling does not copy again.
  rep.PollOnce([] {});
  sim.Run();
  EXPECT_EQ(rep.stats().objects_copied, 1u);
}

TEST(Replicator, SkipsObjectsDeletedByGc) {
  Simulator sim;
  MemObjectStore primary(&sim);
  MemObjectStore replica(&sim);
  ReplicatorConfig config;
  config.min_age = 10 * kSecond;
  Replicator rep(&sim, &primary, &replica, config);

  primary.Put("vol.d.000000000001", Buffer::Zeros(4096), [](Status) {});
  sim.Run();
  rep.PollOnce([] {});
  sim.Run();
  // GC deletes the object before it ages in.
  primary.Corrupt("vol.d.000000000001");
  sim.RunUntil(sim.now() + 11 * kSecond);
  rep.PollOnce([] {});
  sim.Run();
  EXPECT_EQ(rep.stats().objects_copied, 0u);
  EXPECT_EQ(rep.stats().objects_skipped_deleted, 1u);
}

TEST(Replicator, ReplicaMountsConsistently) {
  // Full pipeline: write through LSVD, replicate, mount the replica.
  TestWorld world;
  MemObjectStore replica(&world.sim);
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  LsvdDisk disk(&world.host, &world.store, config);
  ASSERT_TRUE(OpenSync(&world.sim, &disk, &LsvdDisk::Create).ok());

  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(WriteSync(&world.sim, &disk, static_cast<uint64_t>(i) * kMiB,
                          TestPattern(256 * kKiB, 40 + i))
                    .ok());
  }
  ASSERT_TRUE(DrainSync(&world.sim, &disk).ok());
  std::optional<Status> cs;
  disk.backend().WriteCheckpoint([&](Status s) { cs = s; });
  world.sim.Run();
  ASSERT_TRUE(cs->ok());

  ReplicatorConfig rc;
  rc.volume_name = "vol";
  rc.min_age = 0;
  Replicator rep(&world.sim, &world.store, &replica, rc);
  rep.PollOnce([] {});
  world.sim.Run();
  ASSERT_GT(rep.stats().objects_copied, 0u);

  // Mount the replica on a second host.
  ClientHost host2(&world.sim, TestWorld::InstantHostConfig());
  LsvdDisk mounted(&host2, &replica, config);
  ASSERT_TRUE(OpenSync(&world.sim, &mounted, &LsvdDisk::OpenCacheLost).ok());
  for (int i = 0; i < 6; i++) {
    auto r = ReadSync(&world.sim, &mounted, static_cast<uint64_t>(i) * kMiB,
                      256 * kKiB);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, TestPattern(256 * kKiB, 40 + i));
  }
}

// --- GC simulator (Table 5) ---

TEST(GcSimulator, NoOverwritesMeansNoAmplification) {
  GcSimConfig config;
  GcSimulator sim(config);
  for (uint64_t i = 0; i < 1000; i++) {
    sim.Write(i * 64 * kKiB, 64 * kKiB);
  }
  auto r = sim.Finish();
  EXPECT_EQ(r.client_bytes, 1000 * 64 * kKiB);
  EXPECT_DOUBLE_EQ(r.waf(), 1.0);
  EXPECT_EQ(r.merged_bytes, 0u);
  EXPECT_EQ(r.gc_copied_bytes, 0u);
  // Sequential writes merge into few extents.
  EXPECT_LE(r.extent_count, 4u);
}

TEST(GcSimulator, WithinBatchOverwritesMerge) {
  GcSimConfig config;
  config.batch_bytes = kMiB;
  GcSimulator sim(config);
  // Write the same 64K range 16 times within one batch.
  for (int i = 0; i < 16; i++) {
    sim.Write(0, 64 * kKiB);
  }
  auto r = sim.Finish();
  EXPECT_EQ(r.merged_bytes, 15 * 64 * kKiB);
  EXPECT_NEAR(r.merge_ratio(), 15.0 / 16.0, 1e-9);
  EXPECT_EQ(r.backend_bytes, 64 * kKiB);
}

TEST(GcSimulator, MergeDisabledKeepsAllBytes) {
  GcSimConfig config;
  config.batch_bytes = kMiB;
  config.merge = false;
  GcSimulator sim(config);
  for (int i = 0; i < 16; i++) {
    sim.Write(0, 64 * kKiB);
  }
  auto r = sim.Finish();
  EXPECT_EQ(r.merged_bytes, 0u);
  // The raw 1 MiB object is only 1/16 live, so GC copies the 64 KiB of live
  // data to a new object and deletes it.
  EXPECT_EQ(r.gc_copied_bytes, 64 * kKiB);
  EXPECT_EQ(r.backend_bytes, 16 * 64 * kKiB + 64 * kKiB);
  EXPECT_EQ(r.objects_deleted, 1u);
}

TEST(GcSimulator, GcBoundsDeadSpaceAndAmplifies) {
  GcSimConfig config;
  config.batch_bytes = kMiB;
  GcSimulator sim(config);
  Rng rng(9);
  // Hot random overwrites of a 16 MiB working set, far apart in time so
  // batching cannot merge them.
  for (int i = 0; i < 4000; i++) {
    sim.Write(rng.Uniform(256) * 64 * kKiB, 64 * kKiB);
  }
  auto r = sim.Finish();
  EXPECT_GT(r.gc_copied_bytes, 0u);
  EXPECT_GT(r.waf(), 1.05);
  EXPECT_LT(r.waf(), 2.5);
  EXPECT_GT(r.objects_deleted, 0u);
}

TEST(GcSimulator, DefragReducesExtentCount) {
  // Workload engineered to fragment the map: interleaved 4K writes leaving
  // 4K holes, then overwrite the holes much later.
  auto run = [](bool defrag) {
    GcSimConfig config;
    config.batch_bytes = 256 * kKiB;
    config.defrag = defrag;
    GcSimulator sim(config);
    Rng rng(11);
    // Phase 1: even 4K blocks of a 8 MiB region.
    for (uint64_t b = 0; b < 2048; b += 2) {
      sim.Write(b * 4096, 4096);
    }
    // Phase 2: odd blocks, so each region alternates between two objects.
    for (uint64_t b = 1; b < 2048; b += 2) {
      sim.Write(b * 4096, 4096);
    }
    // Phase 3: churn a separate hot region to force GC of phase-1 objects.
    for (int i = 0; i < 8000; i++) {
      sim.Write((4096 + rng.Uniform(64)) * 4096, 4096);
    }
    return sim.Finish();
  };
  auto plain = run(false);
  auto defragged = run(true);
  EXPECT_LE(defragged.extent_count, plain.extent_count);
  // Defrag pays a modest extra write cost.
  EXPECT_GE(defragged.backend_bytes, plain.backend_bytes);
}

TEST(GcSimulator, MapStaysByteAccurate) {
  GcSimConfig config;
  config.batch_bytes = 128 * kKiB;
  GcSimulator sim(config);
  Rng rng(13);
  std::map<uint64_t, bool> written;  // block -> written?
  for (int i = 0; i < 5000; i++) {
    const uint64_t block = rng.Uniform(512);
    const uint64_t blocks = 1 + rng.Uniform(8);
    sim.Write(block * 4096, blocks * 4096);
    for (uint64_t b = block; b < block + blocks; b++) {
      written[b] = true;
    }
  }
  sim.Finish();
  const uint64_t expected_mapped = written.size() * 4096;
  EXPECT_EQ(sim.object_map().mapped_bytes(), expected_mapped);
}

}  // namespace
}  // namespace lsvd
