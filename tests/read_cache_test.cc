// Unit tests for the block-granular FIFO read cache.
#include <gtest/gtest.h>

#include <optional>

#include "src/lsvd/read_cache.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

class ReadCacheTest : public ::testing::Test {
 protected:
  ReadCacheTest() : host_(&sim_, HostConfig()) {
    base_ = *host_.AllocRegion(kRegionSize);
    rc_ = std::make_unique<ReadCache>(&host_, base_, kRegionSize, kLine);
  }

  static ClientHostConfig HostConfig() {
    ClientHostConfig hc;
    hc.ssd_capacity = kGiB;
    hc.ssd = SsdParams::Instant();
    return hc;
  }

  Result<Buffer> ReadVlba(uint64_t vlba, uint64_t len) {
    auto t = rc_->map().LookupOne(vlba);
    if (!t.has_value()) {
      return Status::NotFound("not cached");
    }
    std::optional<Result<Buffer>> r;
    rc_->ReadData(t->plba, len, [&](Result<Buffer> rr) { r = std::move(rr); });
    sim_.Run();
    return std::move(*r);
  }

  static constexpr uint64_t kRegionSize = 8 * kMiB;
  static constexpr uint64_t kLine = 64 * kKiB;

  Simulator sim_;
  ClientHost host_;
  uint64_t base_ = 0;
  std::unique_ptr<ReadCache> rc_;
};

TEST_F(ReadCacheTest, InsertThenHit) {
  Buffer data = TestPattern(kLine, 1);
  rc_->Insert(kMiB, data);
  sim_.Run();
  EXPECT_TRUE(rc_->map().LookupOne(kMiB).has_value());
  auto r = ReadVlba(kMiB, kLine);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
}

TEST_F(ReadCacheTest, MultiLineInsertSplitsAcrossSlots) {
  Buffer data = TestPattern(3 * kLine, 2);
  rc_->Insert(0, data);
  sim_.Run();
  EXPECT_EQ(rc_->stats().insertions, 3u);
  EXPECT_EQ(rc_->map().mapped_bytes(), 3 * kLine);
  // Middle of the range readable.
  auto t = rc_->map().LookupOne(kLine + 4096);
  ASSERT_TRUE(t.has_value());
}

TEST_F(ReadCacheTest, PartialTailLine) {
  rc_->Insert(0, TestPattern(kLine + 8192, 3));
  sim_.Run();
  EXPECT_EQ(rc_->map().mapped_bytes(), kLine + 8192);
}

TEST_F(ReadCacheTest, FifoEvictionRecyclesOldestSlot) {
  const uint64_t lines = rc_->num_lines();
  for (uint64_t i = 0; i < lines; i++) {
    rc_->Insert(i * kLine, TestPattern(kLine, 10 + i));
  }
  sim_.Run();
  EXPECT_TRUE(rc_->map().LookupOne(0).has_value());
  // One more insert evicts the first line.
  rc_->Insert(lines * kLine, TestPattern(kLine, 99));
  sim_.Run();
  EXPECT_FALSE(rc_->map().LookupOne(0).has_value());
  EXPECT_TRUE(rc_->map().LookupOne(lines * kLine).has_value());
  EXPECT_GE(rc_->stats().evictions, 1u);
}

TEST_F(ReadCacheTest, EvictionDoesNotDropRelocatedData) {
  const uint64_t lines = rc_->num_lines();
  // Fill slot 0 with vlba 0, then re-insert vlba 0 (lands in slot 1).
  rc_->Insert(0, TestPattern(kLine, 1));
  rc_->Insert(0, TestPattern(kLine, 2));
  sim_.Run();
  // Laps later, slot 0 gets recycled; the slot-1 mapping for vlba 0 must
  // survive since the map no longer points at slot 0.
  for (uint64_t i = 2; i <= lines; i++) {
    rc_->Insert(i * kLine, TestPattern(kLine, 50 + i));
  }
  sim_.Run();
  // Slot 0 and slot 1... slot 1 holds vlba 0 until it is itself recycled.
  // After exactly `lines` total inserts, slot 1 was recycled too, so run one
  // fewer round: re-check with a fresh cache for determinism.
  auto rc2 = std::make_unique<ReadCache>(&host_, *host_.AllocRegion(kRegionSize),
                                         kRegionSize, kLine);
  rc2->Insert(0, TestPattern(kLine, 1));      // slot 0
  rc2->Insert(0, TestPattern(kLine, 2));      // slot 1 (map points here)
  rc2->Insert(kMiB, TestPattern(kLine, 3));   // slot 2
  sim_.Run();
  const uint64_t lines2 = rc2->num_lines();
  for (uint64_t i = 0; i < lines2 - 3; i++) {
    rc2->Insert((10 + i) * kMiB, TestPattern(kLine, 60));  // fill the rest
  }
  sim_.Run();
  // Next insert recycles slot 0 — vlba 0 must stay mapped (to slot 1).
  rc2->Insert(100 * kMiB, TestPattern(kLine, 61));
  sim_.Run();
  EXPECT_TRUE(rc2->map().LookupOne(0).has_value());
}

TEST_F(ReadCacheTest, InvalidateRemovesMapping) {
  rc_->Insert(0, TestPattern(2 * kLine, 4));
  sim_.Run();
  rc_->Invalidate(kLine, 4096);
  EXPECT_TRUE(rc_->map().LookupOne(0).has_value());
  EXPECT_FALSE(rc_->map().LookupOne(kLine).has_value());
  EXPECT_TRUE(rc_->map().LookupOne(kLine + 4096).has_value());
}

TEST_F(ReadCacheTest, PersistAndLoadMap) {
  rc_->Insert(0, TestPattern(kLine, 5));
  rc_->Insert(4 * kMiB, TestPattern(kLine, 6));
  sim_.Run();
  std::optional<Status> s;
  rc_->PersistMap([&](Status st) { s = st; });
  sim_.Run();
  ASSERT_TRUE(s->ok());

  rc_->Kill();
  auto fresh = std::make_unique<ReadCache>(&host_, base_, kRegionSize, kLine);
  std::optional<Status> ls;
  fresh->LoadMap([&](Status st) { ls = st; });
  sim_.Run();
  ASSERT_TRUE(ls->ok());
  EXPECT_TRUE(fresh->map().LookupOne(0).has_value());
  EXPECT_TRUE(fresh->map().LookupOne(4 * kMiB).has_value());
  EXPECT_EQ(fresh->map().mapped_bytes(), 2 * kLine);
}

// A slot whose fill write fails must never become visible in the map —
// before the fix the map entry was installed at Insert time and the failed
// completion was ignored, so reads kept routing to a slot whose data never
// landed.
TEST_F(ReadCacheTest, FailedFillInstallsNoMapping) {
  host_.ssd()->FailNextWrites(1);
  rc_->Insert(kMiB, TestPattern(kLine, 7));
  sim_.Run();
  EXPECT_FALSE(rc_->map().LookupOne(kMiB).has_value());
  EXPECT_EQ(rc_->map().mapped_bytes(), 0u);
  EXPECT_EQ(rc_->stats().fill_failures, 1u);
  // The cache keeps working: a later fill of the same range lands normally.
  Buffer data = TestPattern(kLine, 8);
  rc_->Insert(kMiB, data);
  sim_.Run();
  auto r = ReadVlba(kMiB, kLine);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
}

// The map entry appears only once the fill write is acknowledged; a read
// racing the fill misses (and re-fetches) instead of hitting unwritten SSD.
TEST_F(ReadCacheTest, MappingVisibleOnlyAfterFillCompletes) {
  rc_->Insert(0, TestPattern(kLine, 9));
  EXPECT_FALSE(rc_->map().LookupOne(0).has_value());
  sim_.Run();
  EXPECT_TRUE(rc_->map().LookupOne(0).has_value());
}

// An invalidation that overlaps an in-flight fill must win: the fill's
// completion may not install a mapping to the now-stale data.
TEST_F(ReadCacheTest, InvalidateBeatsInflightFill) {
  rc_->Insert(0, TestPattern(2 * kLine, 10));
  rc_->Invalidate(kLine, 4096);  // overlaps the second in-flight line
  sim_.Run();
  EXPECT_TRUE(rc_->map().LookupOne(0).has_value());
  EXPECT_FALSE(rc_->map().LookupOne(kLine).has_value());
}

// The mapped_bytes gauge must report the map's bytes, not the sum of slot
// lengths — invalidations and overwrites remove map extents without
// clearing slots, so the old slot-sum over-reported.
TEST_F(ReadCacheTest, MappedBytesGaugeTracksMapNotSlots) {
  MetricsRegistry metrics;
  auto rc = std::make_unique<ReadCache>(
      &host_, *host_.AllocRegion(kRegionSize), kRegionSize, kLine, &metrics);
  rc->Insert(0, TestPattern(2 * kLine, 11));
  sim_.Run();
  EXPECT_EQ(metrics.Snapshot().Find("lsvd.read_cache.mapped_bytes")->value,
            static_cast<double>(rc->map().mapped_bytes()));

  // Invalidate one line: the slot keeps its length but the map shrinks; the
  // gauge must follow the map.
  rc->Invalidate(kLine, kLine);
  EXPECT_EQ(rc->map().mapped_bytes(), kLine);
  EXPECT_EQ(metrics.Snapshot().Find("lsvd.read_cache.mapped_bytes")->value,
            static_cast<double>(kLine));

  // Re-inserting vlba 0 moves the mapping to a new slot; the old slot still
  // holds a length, but mapped bytes must not double-count.
  rc->Insert(0, TestPattern(kLine, 12));
  sim_.Run();
  EXPECT_EQ(metrics.Snapshot().Find("lsvd.read_cache.mapped_bytes")->value,
            static_cast<double>(kLine));
}

TEST_F(ReadCacheTest, LoadMapOnBlankDeviceFailsGracefully) {
  auto fresh_base = *host_.AllocRegion(kRegionSize);
  auto fresh = std::make_unique<ReadCache>(&host_, fresh_base, kRegionSize,
                                           kLine);
  std::optional<Status> s;
  fresh->LoadMap([&](Status st) { s = st; });
  sim_.Run();
  ASSERT_TRUE(s.has_value());
  EXPECT_FALSE(s->ok());
  EXPECT_TRUE(fresh->map().empty());
}

}  // namespace
}  // namespace lsvd
