// PagedExtentMap must be observationally identical to the flat ExtentMap for
// any operation sequence — paging, packing, and eviction are pure memory
// layout concerns. These tests fuzz that equivalence with page spans small
// enough that extents routinely straddle page boundaries, and with resident
// budgets tight enough that pages continuously evict and reload.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "src/lsvd/extent_map.h"
#include "src/lsvd/paged_extent_map.h"
#include "src/util/rng.h"

namespace lsvd {
namespace {

using Flat = ExtentMap<ObjTarget>;
using Paged = PagedExtentMap<ObjTarget>;

void ExpectSameSegments(const Flat& flat, const Paged& paged, uint64_t start,
                        uint64_t len) {
  Flat::SegmentVec want;
  flat.Lookup(start, len, &want);
  Paged::SegmentVec got;
  paged.Lookup(start, len, &got);
  ASSERT_EQ(want.size(), got.size()) << "range [" << start << ", +" << len
                                     << ")";
  for (size_t i = 0; i < want.size(); i++) {
    ASSERT_EQ(want[i].start, got[i].start);
    ASSERT_EQ(want[i].len, got[i].len);
    ASSERT_EQ(want[i].target.has_value(), got[i].target.has_value());
    if (want[i].target.has_value()) {
      ASSERT_EQ(*want[i].target, *got[i].target);
    }
  }
}

void ExpectSameExtents(const Flat& flat, const Paged& paged) {
  const auto want = flat.Extents();
  const auto got = paged.Extents();
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); i++) {
    ASSERT_EQ(want[i].start, got[i].start);
    ASSERT_EQ(want[i].len, got[i].len);
    ASSERT_EQ(want[i].target, got[i].target);
  }
}

TEST(PagedExtentMap, ExtentSpanningPageBoundary) {
  Paged m(/*resident_budget_bytes=*/0, /*page_span=*/4096);
  // One extent covering three pages.
  m.Update(1000, 10000, ObjTarget{5, 100}, nullptr);
  EXPECT_EQ(m.mapped_bytes(), 10000u);
  EXPECT_EQ(m.page_count(), 3u);

  // Lookup re-merges the per-page splits back into one segment.
  Paged::SegmentVec segs;
  m.Lookup(0, 16384, &segs);
  ASSERT_EQ(segs.size(), 3u);  // gap, extent, gap
  EXPECT_FALSE(segs[0].target.has_value());
  ASSERT_TRUE(segs[1].target.has_value());
  EXPECT_EQ(segs[1].start, 1000u);
  EXPECT_EQ(segs[1].len, 10000u);
  EXPECT_EQ(segs[1].target->seq, 5u);
  EXPECT_EQ(segs[1].target->offset, 100u);
  EXPECT_FALSE(segs[2].target.has_value());

  // Extents() re-merges too.
  const auto extents = m.Extents();
  ASSERT_EQ(extents.size(), 1u);
  EXPECT_EQ(extents[0].start, 1000u);
  EXPECT_EQ(extents[0].len, 10000u);

  // LookupOne advances across the boundary correctly.
  auto t = m.LookupOne(9000);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->offset, 100u + 8000u);

  // Remove spanning pages punches everywhere.
  Paged::ExtentVec removed;
  m.Remove(0, 16384, &removed);
  uint64_t removed_len = 0;
  for (const auto& e : removed) {
    removed_len += e.len;
  }
  EXPECT_EQ(removed_len, 10000u);
  EXPECT_EQ(m.mapped_bytes(), 0u);
}

TEST(PagedExtentMap, PackedRoundTripPreservesContents) {
  Paged m(0, 4096);
  m.Update(100, 200, ObjTarget{1, 0}, nullptr);
  m.Update(5000, 300, ObjTarget{2, 64}, nullptr);
  m.Update(4000, 200, ObjTarget{3, 0}, nullptr);  // straddles 4096
  const auto before = m.Extents();
  m.PackAll();
  EXPECT_EQ(m.ResidentBytes(), 0u);
  EXPECT_GT(m.PackedBytes(), 0u);
  // Reading through packed pages reloads them transparently.
  auto t = m.LookupOne(4100);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->seq, 3u);
  const auto after = m.Extents();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); i++) {
    EXPECT_EQ(before[i].start, after[i].start);
    EXPECT_EQ(before[i].len, after[i].len);
    EXPECT_EQ(before[i].target, after[i].target);
  }
  EXPECT_GT(m.page_loads(), 0u);
}

TEST(PagedExtentMap, BudgetBoundsResidentBytesViaEviction) {
  constexpr uint64_t kBudget = 4096;
  Paged m(kBudget, /*page_span=*/64 * 1024);
  Rng rng(7);
  // Touch many pages: far more live state than the budget allows.
  for (int i = 0; i < 200; i++) {
    const uint64_t page = rng.Uniform(64);
    const uint64_t start = page * 64 * 1024 + rng.Uniform(1024) * 16;
    m.Update(start, (1 + rng.Uniform(16)) * 512, ObjTarget{page + 1, 0},
             nullptr);
    ASSERT_LE(m.ResidentBytes(), kBudget) << "after op " << i;
  }
  EXPECT_GT(m.page_evictions(), 0u);
  EXPECT_GT(m.page_loads(), 0u);
  // Contents survive all that packing and reloading.
  EXPECT_GT(m.mapped_bytes(), 0u);
  uint64_t sum = 0;
  for (const auto& e : m.Extents()) {
    sum += e.len;
  }
  EXPECT_EQ(sum, m.mapped_bytes());
}

TEST(PagedExtentMap, SetResidentBudgetEvictsImmediately) {
  Paged m(0, 4096);
  for (uint64_t p = 0; p < 16; p++) {
    m.Update(p * 4096, 1024, ObjTarget{p + 1, 0}, nullptr);
  }
  const uint64_t before = m.ResidentBytes();
  ASSERT_GT(before, 1024u);
  m.SetResidentBudget(1024);
  EXPECT_LE(m.ResidentBytes(), 1024u);
  EXPECT_GT(m.page_evictions(), 0u);
}

// The core property: a paged map under aggressive eviction answers every
// query exactly like a flat map fed the same operations.
class PagedEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PagedEquivalence, FuzzMatchesFlatMap) {
  const uint64_t budget = GetParam();
  constexpr uint64_t kSpan = 4096;  // tiny pages => constant boundary traffic
  constexpr uint64_t kSpace = 64 * kSpan;
  Flat flat;
  Paged paged(budget, kSpan);
  Rng rng(42 + budget);
  uint64_t next_seq = 1;

  for (int op = 0; op < 3000; op++) {
    const uint64_t start = rng.Uniform(kSpace / 16) * 16;
    const uint64_t len = (1 + rng.Uniform(512)) * 16;  // up to 2 pages
    switch (rng.Uniform(8)) {
      case 0:
      case 1: {  // Remove, comparing removed sets
        Flat::ExtentVec want;
        flat.Remove(start, len, &want);
        Paged::ExtentVec got;
        paged.Remove(start, len, &got);
        uint64_t want_len = 0;
        uint64_t got_len = 0;
        for (const auto& e : want) {
          want_len += e.len;
        }
        for (const auto& e : got) {
          got_len += e.len;
        }
        // Page splits may report more pieces, but the same coverage.
        ASSERT_EQ(want_len, got_len);
        break;
      }
      case 2: {  // LookupOne
        const auto want = flat.LookupOne(start);
        const auto got = paged.LookupOne(start);
        ASSERT_EQ(want.has_value(), got.has_value());
        if (want.has_value()) {
          ASSERT_EQ(*want, *got);
        }
        break;
      }
      case 3: {  // ranged Lookup
        ExpectSameSegments(flat, paged, start, len);
        break;
      }
      default: {  // Update, comparing displaced coverage
        const ObjTarget target{next_seq++, rng.Uniform(1 << 24)};
        Flat::ExtentVec want;
        flat.Update(start, len, target, &want);
        Paged::ExtentVec got;
        paged.Update(start, len, target, &got);
        uint64_t want_len = 0;
        uint64_t got_len = 0;
        for (const auto& e : want) {
          want_len += e.len;
        }
        for (const auto& e : got) {
          got_len += e.len;
        }
        ASSERT_EQ(want_len, got_len);
        break;
      }
    }
    ASSERT_EQ(flat.mapped_bytes(), paged.mapped_bytes()) << "op " << op;
    // Page-boundary splits may inflate the stored extent count, never
    // deflate it (Extents() re-merges, checked below).
    ASSERT_GE(paged.extent_count(), flat.extent_count()) << "op " << op;
    if (budget != 0) {
      ASSERT_LE(paged.ResidentBytes(), budget);
    }
  }

  ExpectSameSegments(flat, paged, 0, kSpace);
  ExpectSameExtents(flat, paged);

  // Packed form is dramatically smaller than the flat map's node heap.
  paged.PackAll();
  if (flat.extent_count() > 100) {
    EXPECT_LT(paged.MemoryBytes(), flat.MemoryBytes());
  }
  ExpectSameExtents(flat, paged);
}

INSTANTIATE_TEST_SUITE_P(Budgets, PagedEquivalence,
                         ::testing::Values(0,        // never evict
                                           2048,     // thrash hard
                                           16384));  // moderate

}  // namespace
}  // namespace lsvd
