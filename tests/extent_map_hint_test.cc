// The extent map's cached last-extent hint is a pure accelerator: results
// must be identical to a hint-free map for any interleaving of Update /
// Remove / Lookup / LookupOne. These tests fuzz that equivalence against a
// byte-granularity shadow model, emphasizing the access patterns the hint
// optimizes (sequential scans, repeated 4K hits) and the ones that
// invalidate it (erases under the hint, merges that replace the node).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/lsvd/extent_map.h"
#include "src/util/rng.h"
#include "src/util/small_vector.h"

namespace lsvd {
namespace {

constexpr uint64_t kSpace = 1 << 16;  // small space => dense overlaps
constexpr uint64_t kGran = 16;        // op sizes are multiples of this

// Byte-granularity shadow: addr -> target for every mapped byte.
using Shadow = std::map<uint64_t, ObjTarget>;

void ShadowUpdate(Shadow* shadow, uint64_t start, uint64_t len,
                  ObjTarget target) {
  for (uint64_t i = 0; i < len; i++) {
    (*shadow)[start + i] = target.Advanced(i);
  }
}

void ShadowRemove(Shadow* shadow, uint64_t start, uint64_t len) {
  for (uint64_t i = 0; i < len; i++) {
    shadow->erase(start + i);
  }
}

// Checks map agrees with the shadow over [start, start+len) via Lookup.
void CheckRange(const ExtentMap<ObjTarget>& map, const Shadow& shadow,
                uint64_t start, uint64_t len) {
  ExtentMap<ObjTarget>::SegmentVec segs;
  map.Lookup(start, len, &segs);
  uint64_t pos = start;
  for (const auto& seg : segs) {
    ASSERT_EQ(seg.start, pos);
    ASSERT_GT(seg.len, 0u);
    for (uint64_t i = 0; i < seg.len; i++) {
      const auto it = shadow.find(seg.start + i);
      if (seg.target.has_value()) {
        ASSERT_NE(it, shadow.end()) << "addr " << seg.start + i;
        ASSERT_EQ(it->second, seg.target->Advanced(i));
      } else {
        ASSERT_EQ(it, shadow.end()) << "addr " << seg.start + i;
      }
    }
    pos += seg.len;
  }
  ASSERT_EQ(pos, start + len);
}

TEST(ExtentMapHint, FuzzAgainstShadowModel) {
  for (uint64_t seed = 1; seed <= 6; seed++) {
    ExtentMap<ObjTarget> map;
    Shadow shadow;
    Rng rng(seed);
    uint64_t next_target = 1;

    for (int op = 0; op < 4000; op++) {
      const uint64_t start = rng.Uniform(kSpace / kGran) * kGran;
      const uint64_t len =
          (1 + rng.Uniform(8)) * kGran;  // up to 128 bytes
      switch (rng.Uniform(10)) {
        case 0:
        case 1: {  // Remove
          ExtentMap<ObjTarget>::ExtentVec removed;
          map.Remove(start, len, &removed);
          // Removed extents must match the shadow's prior contents.
          for (const auto& e : removed) {
            for (uint64_t i = 0; i < e.len; i++) {
              const auto it = shadow.find(e.start + i);
              ASSERT_NE(it, shadow.end());
              ASSERT_EQ(it->second, e.target.Advanced(i));
            }
          }
          ShadowRemove(&shadow, start, len);
          break;
        }
        case 2:
        case 3:
        case 4: {  // Lookup (randomly alternating with sequential scans)
          CheckRange(map, shadow, start, len);
          // Sequential continuation — the hint's fast path.
          CheckRange(map, shadow, start + len,
                     std::min<uint64_t>(len, kSpace - start - len));
          break;
        }
        case 5: {  // LookupOne
          const auto got = map.LookupOne(start);
          const auto it = shadow.find(start);
          if (it == shadow.end()) {
            ASSERT_FALSE(got.has_value());
          } else {
            ASSERT_TRUE(got.has_value());
            ASSERT_EQ(*got, it->second);
          }
          break;
        }
        default: {  // Update
          const ObjTarget target{next_target++, rng.Uniform(1 << 20)};
          ExtentMap<ObjTarget>::ExtentVec displaced;
          map.Update(start, len, target, &displaced);
          for (const auto& e : displaced) {
            for (uint64_t i = 0; i < e.len; i++) {
              const auto it = shadow.find(e.start + i);
              ASSERT_NE(it, shadow.end());
              ASSERT_EQ(it->second, e.target.Advanced(i));
            }
          }
          ShadowUpdate(&shadow, start, len, target);
          break;
        }
      }
      ASSERT_EQ(map.mapped_bytes(), shadow.size());
    }
    // Full sweep at the end.
    CheckRange(map, shadow, 0, kSpace);
  }
}

TEST(ExtentMapHint, SequentialLookupAfterEraseUnderHint) {
  ExtentMap<ObjTarget> map;
  // Three adjacent extents with non-contiguous targets (no merging).
  map.Update(0, 100, ObjTarget{1, 0});
  map.Update(100, 100, ObjTarget{2, 0});
  map.Update(200, 100, ObjTarget{3, 0});
  ASSERT_EQ(map.extent_count(), 3u);

  // Prime the hint onto the middle extent, then erase it.
  EXPECT_TRUE(map.LookupOne(150).has_value());
  map.Remove(100, 100);

  // The hint must not dangle: lookups on both sides still work.
  auto left = map.LookupOne(50);
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(left->seq, 1u);
  auto gone = map.LookupOne(150);
  EXPECT_FALSE(gone.has_value());
  auto right = map.LookupOne(250);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->seq, 3u);
}

// Regression for the TRIM path: punching the extent the hint points at must
// not leave a dangling node reference. Prime the hint, Remove (trim) the
// hinted extent, then read *through* the punched range with ranged Lookups —
// under ASan this walks the freed node if the hint dangles.
TEST(ExtentMapHint, TrimHintedExtentThenReadThrough) {
  ExtentMap<ObjTarget> map;
  map.Update(0, 4096, ObjTarget{1, 0});
  map.Update(4096, 4096, ObjTarget{2, 0});
  map.Update(8192, 4096, ObjTarget{3, 0});

  // Hint onto the middle extent, then trim it away entirely.
  EXPECT_TRUE(map.LookupOne(6000).has_value());
  ExtentMap<ObjTarget>::ExtentVec removed;
  map.Remove(4096, 4096, &removed);
  ASSERT_EQ(removed.size(), 1u);

  // Ranged lookup spanning the punched hole — must report a gap, with both
  // neighbors intact.
  ExtentMap<ObjTarget>::SegmentVec segs;
  map.Lookup(0, 12288, &segs);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_TRUE(segs[0].target.has_value());
  EXPECT_FALSE(segs[1].target.has_value());
  EXPECT_EQ(segs[1].start, 4096u);
  EXPECT_EQ(segs[1].len, 4096u);
  EXPECT_TRUE(segs[2].target.has_value());
  EXPECT_EQ(segs[2].target->seq, 3u);

  // Partial punch that splits the hinted extent: hint pointed at the node
  // that gets erased and replaced by two halves.
  ExtentMap<ObjTarget> map2;
  map2.Update(0, 12288, ObjTarget{7, 0});
  EXPECT_TRUE(map2.LookupOne(6000).has_value());  // hint -> [0,12288)
  map2.Remove(4096, 4096, nullptr);
  EXPECT_EQ(map2.extent_count(), 2u);
  auto left = map2.LookupOne(100);
  ASSERT_TRUE(left.has_value());
  EXPECT_EQ(left->offset, 100u);
  EXPECT_FALSE(map2.LookupOne(6000).has_value());
  auto right = map2.LookupOne(9000);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->offset, 9000u);

  // Trim everything while the hint points at the last extent, then read.
  map2.Remove(0, 12288, nullptr);
  EXPECT_TRUE(map2.empty());
  map2.Lookup(0, 12288, &segs);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_FALSE(segs[0].target.has_value());
}

TEST(ExtentMapHint, HintSurvivesMergeReplacingNode) {
  ExtentMap<ObjTarget> map;
  map.Update(0, 64, ObjTarget{9, 0});
  EXPECT_TRUE(map.LookupOne(32).has_value());  // hint -> [0,64)
  // Contiguous update merges into one extent [0,128), erasing the old node.
  map.Update(64, 64, ObjTarget{9, 64});
  ASSERT_EQ(map.extent_count(), 1u);
  auto got = map.LookupOne(100);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 9u);
  EXPECT_EQ(got->offset, 100u);
}

TEST(ExtentMapHint, OutParamMatchesVectorApi) {
  ExtentMap<ObjTarget> map;
  Rng rng(42);
  for (int i = 0; i < 500; i++) {
    map.Update(rng.Uniform(4096) * 16, (1 + rng.Uniform(16)) * 16,
               ObjTarget{static_cast<uint64_t>(i), 0});
  }
  for (int i = 0; i < 500; i++) {
    const uint64_t start = rng.Uniform(4096) * 16;
    const uint64_t len = (1 + rng.Uniform(32)) * 16;
    const auto via_vec = map.Lookup(start, len);
    ExtentMap<ObjTarget>::SegmentVec via_out;
    map.Lookup(start, len, &via_out);
    ASSERT_EQ(via_vec.size(), via_out.size());
    for (size_t k = 0; k < via_vec.size(); k++) {
      ASSERT_EQ(via_vec[k].start, via_out[k].start);
      ASSERT_EQ(via_vec[k].len, via_out[k].len);
      ASSERT_EQ(via_vec[k].target, via_out[k].target);
    }
  }
}

TEST(ExtentMapHint, UpdateNullDisplacedIsAllowed) {
  ExtentMap<ObjTarget> map;
  map.Update(0, 100, ObjTarget{1, 0}, nullptr);
  map.Update(50, 100, ObjTarget{2, 0}, nullptr);
  map.Remove(0, 25, nullptr);
  EXPECT_EQ(map.mapped_bytes(), 125u);
}

}  // namespace
}  // namespace lsvd
