// Unit tests for the log-structured block store: batching, within-batch
// coalescing, in-order map application, garbage collection, snapshots with
// deferred deletes, checkpointing and prefix recovery.
#include <gtest/gtest.h>

#include <optional>

#include "src/lsvd/backend_store.h"
#include "src/lsvd/write_cache.h"
#include "src/objstore/faulty_object_store.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

class BackendStoreTest : public ::testing::Test {
 protected:
  BackendStoreTest() : world_(), config_(MakeConfig()) {
    store_ = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                            nullptr, config_);
  }

  static LsvdConfig MakeConfig() {
    LsvdConfig c = TestWorld::SmallVolumeConfig();
    c.batch_bytes = 64 * kKiB;
    c.checkpoint_interval_objects = 4;
    c.gc_enabled = false;  // enabled per-test
    return c;
  }

  // Writes one batch worth of data and waits for it to apply.
  void WriteAndApply(uint64_t vlba, uint64_t len, uint64_t seed) {
    store_->AddWrite(vlba, TestPattern(len, seed));
    store_->Seal();
    world_.sim.Run();
  }

  void Run() { world_.sim.Run(); }

  TestWorld world_;
  LsvdConfig config_;
  std::unique_ptr<BackendStore> store_;
};

TEST_F(BackendStoreTest, BatchSealsAtSizeAndAppliesToMap) {
  // 64 KiB batch limit: 16 x 4 KiB appends seal exactly one batch.
  uint64_t seq0 = 0;
  for (int i = 0; i < 16; i++) {
    const uint64_t s =
        store_->AddWrite(static_cast<uint64_t>(i) * 4096,
                         TestPattern(4096, 100 + i));
    if (i == 0) {
      seq0 = s;
    }
    EXPECT_EQ(s, seq0);  // all in the same batch
  }
  Run();
  EXPECT_EQ(store_->applied_seq(), seq0);
  EXPECT_EQ(store_->stats().objects_put, 1u);
  EXPECT_EQ(store_->object_map().mapped_bytes(), 16u * 4096);
  auto t = store_->object_map().LookupOne(4096);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->seq, seq0);
}

TEST_F(BackendStoreTest, FetchReturnsWrittenData) {
  Buffer data = TestPattern(8192, 7);
  store_->AddWrite(kMiB, data);
  store_->Seal();
  Run();
  auto t = store_->object_map().LookupOne(kMiB);
  ASSERT_TRUE(t.has_value());
  std::optional<Result<Buffer>> r;
  store_->Fetch(*t, 8192, [&](Result<Buffer> rr) { r = std::move(rr); });
  Run();
  ASSERT_TRUE(r->ok());
  EXPECT_EQ(r->value(), data);
}

TEST_F(BackendStoreTest, WithinBatchCoalescingDropsOverwrittenBytes) {
  // Two writes to the same LBA in one batch: only the second survives.
  store_->AddWrite(0, TestPattern(8192, 1));
  Buffer latest = TestPattern(8192, 2);
  store_->AddWrite(0, latest);
  store_->Seal();
  Run();
  EXPECT_EQ(store_->stats().coalesced_bytes, 8192u);
  EXPECT_EQ(store_->stats().payload_bytes, 8192u);
  auto t = store_->object_map().LookupOne(0);
  ASSERT_TRUE(t.has_value());
  std::optional<Result<Buffer>> r;
  store_->Fetch(*t, 8192, [&](Result<Buffer> rr) { r = std::move(rr); });
  Run();
  ASSERT_TRUE(r->ok());
  EXPECT_EQ(r->value(), latest);
}

TEST_F(BackendStoreTest, CoalescingDisabledKeepsAllBytes) {
  config_.coalesce_within_batch = false;
  store_ = std::make_unique<BackendStore>(&world_.host, &world_.store, nullptr,
                                          config_);
  store_->AddWrite(0, TestPattern(8192, 1));
  Buffer latest = TestPattern(8192, 2);
  store_->AddWrite(0, latest);
  store_->Seal();
  Run();
  EXPECT_EQ(store_->stats().coalesced_bytes, 0u);
  EXPECT_EQ(store_->stats().payload_bytes, 16384u);
  // Later extent wins in apply order.
  auto t = store_->object_map().LookupOne(0);
  ASSERT_TRUE(t.has_value());
  std::optional<Result<Buffer>> r;
  store_->Fetch(*t, 8192, [&](Result<Buffer> rr) { r = std::move(rr); });
  Run();
  ASSERT_TRUE(r->ok());
  EXPECT_EQ(r->value(), latest);
}

TEST_F(BackendStoreTest, CrossBatchOverwriteDecrementsLiveBytes) {
  WriteAndApply(0, 16 * 4096, 1);
  const uint64_t total_before = store_->total_bytes();
  EXPECT_EQ(store_->live_bytes(), total_before);
  // Overwrite half of it in a second batch.
  WriteAndApply(0, 8 * 4096, 2);
  EXPECT_EQ(store_->live_bytes(), total_before);  // half old + new half...
  // Utilization dropped below 1 because the first object lost half its live
  // bytes while totals grew.
  EXPECT_LT(store_->Utilization(), 1.0);
}

TEST_F(BackendStoreTest, ObjectsAreNamedBySequence) {
  WriteAndApply(0, 4096, 1);
  WriteAndApply(4096, 4096, 2);
  auto names = world_.store.List(DataObjectPrefix("vol"));
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], DataObjectName("vol", 1));
  EXPECT_EQ(names[1], DataObjectName("vol", 2));
}

TEST_F(BackendStoreTest, SealIfAgedSealsStaleBatch) {
  store_->AddWrite(0, TestPattern(4096, 1));
  world_.sim.RunUntil(world_.sim.now() + kSecond);
  EXPECT_EQ(store_->stats().objects_put, 0u);
  store_->SealIfAged(500 * kMillisecond);
  Run();
  EXPECT_EQ(store_->stats().objects_put, 1u);
}

TEST_F(BackendStoreTest, BatchSealDeadlineSealsPartialBatch) {
  config_.batch_seal_deadline = 10 * kMillisecond;
  store_ = std::make_unique<BackendStore>(&world_.host, &world_.store, nullptr,
                                          config_);
  // No writes: the deadline must never emit an empty object (it would
  // advance the sync watermark past journal data the backend doesn't hold).
  world_.sim.RunUntil(world_.sim.now() + 50 * kMillisecond);
  EXPECT_EQ(store_->stats().objects_put, 0u);

  // One 4 KiB write — far below the 64 KiB size trigger — seals on its own
  // once the deadline passes, with no explicit Seal() call.
  const uint64_t seq = store_->AddWrite(0, TestPattern(4096, 1));
  world_.sim.RunUntil(world_.sim.now() + 50 * kMillisecond);
  EXPECT_EQ(store_->stats().objects_put, 1u);
  EXPECT_EQ(store_->applied_seq(), seq);

  // The slot reopened cleanly: the next write gets a younger batch and that
  // batch's own deadline seals it too.
  const uint64_t seq2 = store_->AddWrite(4096, TestPattern(4096, 2));
  EXPECT_GT(seq2, seq);
  world_.sim.RunUntil(world_.sim.now() + 50 * kMillisecond);
  EXPECT_EQ(store_->stats().objects_put, 2u);
  EXPECT_EQ(store_->applied_seq(), seq2);
}

TEST_F(BackendStoreTest, SizeSealedBatchDisarmsItsDeadline) {
  config_.batch_seal_deadline = 10 * kMillisecond;
  store_ = std::make_unique<BackendStore>(&world_.host, &world_.store, nullptr,
                                          config_);
  // Fill the 64 KiB batch instantly: it seals by size; the stale deadline
  // timer must not double-seal or touch the next batch.
  for (int i = 0; i < 16; i++) {
    store_->AddWrite(static_cast<uint64_t>(i) * 4096,
                     TestPattern(4096, 100 + i));
  }
  const uint64_t seq2 = store_->AddWrite(kMiB, TestPattern(4096, 200));
  world_.sim.RunUntil(world_.sim.now() + 50 * kMillisecond);
  EXPECT_EQ(store_->stats().objects_put, 2u);
  EXPECT_EQ(store_->applied_seq(), seq2);
}

TEST_F(BackendStoreTest, CheckpointsWrittenPeriodically) {
  for (int i = 0; i < 10; i++) {
    WriteAndApply(static_cast<uint64_t>(i) * kMiB, 4096, 10 + i);
  }
  EXPECT_GE(store_->stats().checkpoints, 2u);
  EXPECT_GT(store_->last_checkpoint_seq(), 0u);
  // Only the two newest checkpoint objects are kept.
  EXPECT_LE(world_.store.List(CheckpointPrefix("vol")).size(), 2u);
}

TEST_F(BackendStoreTest, RecoverRebuildsFromCheckpointAndReplay) {
  for (int i = 0; i < 10; i++) {
    WriteAndApply(static_cast<uint64_t>(i) * kMiB, 8192, 20 + i);
  }
  const uint64_t applied = store_->applied_seq();
  const auto extents = store_->object_map().Extents();

  auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->applied_seq(), applied);
  EXPECT_EQ(fresh->next_seq(), applied + 1);
  EXPECT_EQ(fresh->object_map().Extents(), extents);
  EXPECT_EQ(fresh->object_count(), store_->object_count());
}

TEST_F(BackendStoreTest, RecoverDeletesStrandedObjects) {
  for (int i = 0; i < 4; i++) {
    WriteAndApply(static_cast<uint64_t>(i) * kMiB, 4096, 30 + i);
  }
  // Fabricate stranded objects: seq 6 and 7 exist, 5 is missing.
  DataObjectHeader h6;
  h6.seq = 6;
  h6.extents = {{0, 4096, 0, 0}};
  world_.store.Put(DataObjectName("vol", 6),
                   EncodeDataObject(h6, TestPattern(4096, 99)), [](Status) {});
  DataObjectHeader h7;
  h7.seq = 7;
  h7.extents = {{4096, 4096, 0, 0}};
  world_.store.Put(DataObjectName("vol", 7),
                   EncodeDataObject(h7, TestPattern(4096, 98)), [](Status) {});
  Run();

  auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->applied_seq(), 4u);
  // Stranded objects were deleted during recovery (§3.3).
  EXPECT_EQ(world_.store.Head(DataObjectName("vol", 6)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(world_.store.Head(DataObjectName("vol", 7)).status().code(),
            StatusCode::kNotFound);
}

TEST_F(BackendStoreTest, RecoverFallsBackToOlderCheckpoint) {
  for (int i = 0; i < 10; i++) {
    WriteAndApply(static_cast<uint64_t>(i) * kMiB, 8192, 60 + i);
  }
  std::optional<Status> cs;
  store_->WriteCheckpoint([&](Status s) { cs = s; });
  Run();
  ASSERT_TRUE(cs->ok());
  const auto extents = store_->object_map().Extents();

  // Plant a corrupt checkpoint with a higher id than any real one: recovery
  // must reject it (CRC) and fall back to the older valid checkpoint.
  world_.store.Put(CheckpointObjectName("vol", 999999),
                   TestPattern(512, 123), [](Status) {});
  Run();

  auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->object_map().Extents(), extents);
  EXPECT_EQ(fresh->applied_seq(), store_->applied_seq());
}

TEST_F(BackendStoreTest, RecoverOnEmptyStoreYieldsEmptyVolume) {
  auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->applied_seq(), 0u);
  EXPECT_EQ(fresh->next_seq(), 1u);
  EXPECT_TRUE(fresh->object_map().empty());
}

class BackendGcTest : public BackendStoreTest {
 protected:
  BackendGcTest() {
    config_.gc_enabled = true;
    config_.checkpoint_interval_objects = 2;
    store_ = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                            nullptr, config_);
  }
};

TEST_F(BackendGcTest, GcReclaimsOverwrittenObjects) {
  // Repeatedly overwrite the same 256 KiB working set; utilization collapses
  // and GC must kick in, keeping it at/above the high watermark.
  for (int round = 0; round < 30; round++) {
    for (int i = 0; i < 4; i++) {
      store_->AddWrite(static_cast<uint64_t>(i) * 64 * kKiB,
                       TestPattern(64 * kKiB, 100 + round));
    }
    Run();
  }
  store_->Seal();
  Run();
  EXPECT_GT(store_->stats().gc_objects_cleaned, 0u);
  EXPECT_GT(store_->stats().objects_deleted, 0u);
  EXPECT_GE(store_->Utilization(), config_.gc_low_watermark - 0.05);
  // Deleted objects are actually gone from the store.
  const auto names = world_.store.List(DataObjectPrefix("vol"));
  EXPECT_LT(names.size(), 30u * 4);
}

TEST_F(BackendGcTest, GcPreservesData) {
  // Known final image: distinct pattern per 64 KiB slot, heavily rewritten.
  constexpr int kSlots = 4;
  std::vector<uint64_t> final_seed(kSlots, 0);
  Rng rng(77);
  for (int round = 0; round < 40; round++) {
    const int slot = static_cast<int>(rng.Uniform(kSlots));
    const uint64_t seed = 1000 + static_cast<uint64_t>(round);
    final_seed[static_cast<size_t>(slot)] = seed;
    store_->AddWrite(static_cast<uint64_t>(slot) * 64 * kKiB,
                     TestPattern(64 * kKiB, seed));
    Run();
  }
  store_->Seal();
  Run();
  ASSERT_GT(store_->stats().gc_objects_cleaned, 0u);

  for (int slot = 0; slot < kSlots; slot++) {
    if (final_seed[static_cast<size_t>(slot)] == 0) {
      continue;
    }
    const uint64_t vlba = static_cast<uint64_t>(slot) * 64 * kKiB;
    auto segs = store_->object_map().Lookup(vlba, 64 * kKiB);
    Buffer assembled;
    for (const auto& seg : segs) {
      ASSERT_TRUE(seg.target.has_value()) << "hole at slot " << slot;
      std::optional<Result<Buffer>> r;
      store_->Fetch(*seg.target, seg.len,
                    [&](Result<Buffer> rr) { r = std::move(rr); });
      Run();
      ASSERT_TRUE(r->ok());
      assembled.Append(r->value());
    }
    EXPECT_EQ(assembled, TestPattern(64 * kKiB,
                                     final_seed[static_cast<size_t>(slot)]))
        << "slot " << slot;
  }
}

TEST_F(BackendGcTest, RecoveryAfterGcIsConsistent) {
  Rng rng(88);
  std::vector<uint64_t> final_seed(4, 0);
  for (int round = 0; round < 40; round++) {
    const int slot = static_cast<int>(rng.Uniform(4));
    const uint64_t seed = 2000 + static_cast<uint64_t>(round);
    final_seed[static_cast<size_t>(slot)] = seed;
    store_->AddWrite(static_cast<uint64_t>(slot) * 64 * kKiB,
                     TestPattern(64 * kKiB, seed));
    Run();
  }
  store_->Seal();
  Run();
  ASSERT_GT(store_->stats().gc_objects_cleaned, 0u);

  auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->object_map().Extents(), store_->object_map().Extents());
}

TEST_F(BackendGcTest, SnapshotDefersDeletes) {
  for (int i = 0; i < 8; i++) {
    WriteAndApply(0, 64 * kKiB, 300 + i);  // same range: all but last dead
  }
  std::optional<Result<uint64_t>> snap;
  store_->CreateSnapshot([&](Result<uint64_t> r) { snap = std::move(r); });
  Run();
  ASSERT_TRUE(snap->ok());
  const uint64_t snap_seq = snap->value();
  const size_t objects_at_snap =
      world_.store.List(DataObjectPrefix("vol")).size();

  // More overwrites trigger GC of pre-snapshot objects -> deferred deletes.
  for (int i = 0; i < 12; i++) {
    WriteAndApply(0, 64 * kKiB, 400 + i);
  }
  EXPECT_GT(store_->stats().deferred_deletes, 0u);
  // Objects referenced by the snapshot are still present.
  EXPECT_GE(world_.store.List(DataObjectPrefix("vol")).size(),
            objects_at_snap - 0);

  // Deleting the snapshot releases the deferred deletes.
  const uint64_t deleted_before = store_->stats().objects_deleted;
  std::optional<Status> ds;
  store_->DeleteSnapshot(snap_seq, [&](Status st) { ds = st; });
  Run();
  ASSERT_TRUE(ds->ok());
  EXPECT_GT(store_->stats().objects_deleted, deleted_before);
  EXPECT_TRUE(store_->deferred_deletes().empty());
}

TEST_F(BackendGcTest, DefragPlugsHolesAndShrinksMap) {
  // Interleaved 4 KiB writes (even blocks, then odd blocks much later)
  // fragment the map; with hole plugging enabled, GC copies contiguous runs
  // and the map shrinks. Same workload, defrag on vs off.
  auto run = [&](uint64_t hole_max) -> size_t {
    LsvdConfig config = MakeConfig();
    config.volume_name = "defrag" + std::to_string(hole_max);
    config.gc_enabled = true;
    config.checkpoint_interval_objects = 2;
    config.gc_defrag_hole_max = hole_max;
    auto store = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                                nullptr, config);
    // Phase 1: a contiguous 2 MiB region (few fully-live objects).
    for (uint64_t b = 0; b < 512; b += 16) {
      store->AddWrite(b * 4096, TestPattern(16 * 4096, 7000 + b));
      world_.sim.Run();
    }
    // Phase 2: overwrite 3 of every 4 blocks, leaving the phase-1 objects
    // 25% live with 4 KiB live pieces separated by 12 KiB holes.
    for (uint64_t b = 0; b < 512; b++) {
      if (b % 4 != 0) {
        store->AddWrite(b * 4096, TestPattern(4096, 8000 + b));
        world_.sim.Run();
      }
    }
    store->Seal();
    world_.sim.Run();
    EXPECT_GT(store->stats().gc_objects_cleaned, 0u);
    // All 512 blocks of the fragmented region must still read correctly.
    for (uint64_t b = 0; b < 512; b += 97) {
      auto t = store->object_map().LookupOne(b * 4096);
      if (!t.has_value()) {
        ADD_FAILURE() << "block " << b << " unmapped";
        return 0;
      }
      std::optional<Result<Buffer>> r;
      store->Fetch(*t, 4096, [&](Result<Buffer> rr) { r = std::move(rr); });
      world_.sim.Run();
      if (!r.has_value() || !r->ok()) {
        ADD_FAILURE() << "block " << b << " unreadable";
        return 0;
      }
      const Buffer expect = b % 4 == 0
                                ? TestPattern(16 * 4096, 7000 + b / 16 * 16)
                                      .Slice(b % 16 * 4096, 4096)
                                : TestPattern(4096, 8000 + b);
      EXPECT_EQ(r->value(), expect) << "block " << b;
    }
    return store->object_map().extent_count();
  };

  const size_t plain = run(0);
  const size_t defragged = run(16 * kKiB);
  EXPECT_LT(defragged, plain);
}

TEST_F(BackendGcTest, CorruptVictimAbortsRoundAndKeepsAccounting) {
  // Two objects, then a checkpoint (interval = 2) so object 1 becomes GC
  // eligible (victims must be older than the last checkpoint).
  WriteAndApply(0, 64 * kKiB, 1);             // object 1
  WriteAndApply(64 * kKiB, 64 * kKiB, 2);     // object 2 -> checkpoint
  ASSERT_GE(store_->last_checkpoint_seq(), 2u);

  // Replace object 1's backend bytes with garbage — a torn upload or bit rot
  // that slipped past the PUT path. Its map extents still point into it.
  const std::string victim = store_->NameForSeq(1);
  world_.store.Corrupt(victim);
  world_.store.Put(victim, TestPattern(4096, 77), [](Status) {});
  Run();

  // Overwrite most of object 1 so it becomes the least-utilized object and
  // utilization dips below the low watermark: GC picks it as victim.
  WriteAndApply(0, 56 * kKiB, 3);             // object 3
  ASSERT_LT(store_->Utilization(), config_.gc_low_watermark);

  // The round must abort: the victim's header is undecodable, but live map
  // extents still point into it. Before the fix the victim was treated as
  // fully dead — erased from accounting while reads through it kept failing.
  EXPECT_GE(store_->stats().gc_aborted_corrupt, 1u);
  EXPECT_EQ(store_->stats().gc_objects_cleaned, 0u);
  EXPECT_EQ(store_->object_count(), 3u);  // victim still accounted
  // The still-live tail of object 1 keeps its mapping; nothing was deleted.
  auto t = store_->object_map().LookupOne(60 * kKiB);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->seq, 1u);
  EXPECT_TRUE(world_.store.Head(victim).ok());
}

TEST_F(BackendGcTest, DeleteUnknownSnapshotFails) {
  std::optional<Status> s;
  store_->DeleteSnapshot(999, [&](Status st) { s = st; });
  Run();
  EXPECT_EQ(s->code(), StatusCode::kNotFound);
}

// --- retry/backoff and degraded mode against a faulty backend ---

LsvdConfig FaultTestConfig() {
  LsvdConfig c = TestWorld::SmallVolumeConfig();
  c.batch_bytes = 64 * kKiB;
  c.gc_enabled = false;
  c.retry.initial_backoff = kMillisecond;
  c.retry.max_backoff = 8 * kMillisecond;
  c.retry.degraded_probe_interval = 100 * kMillisecond;
  return c;
}

TEST(BackendStoreFaultTest, TransientPutFaultsAreAbsorbedByRetries) {
  TestWorld world;
  FaultInjectionConfig fc;
  fc.seed = 21;
  fc.put_error_p = 0.10;
  FaultyObjectStore faulty(&world.store, &world.sim, fc);
  BackendStore store(&world.host, &faulty, nullptr, FaultTestConfig());

  uint64_t last_seq = 0;
  for (int i = 0; i < 30; i++) {
    last_seq = store.AddWrite(static_cast<uint64_t>(i) * 64 * kKiB,
                              TestPattern(64 * kKiB, 500 + i));
  }
  store.Seal();
  world.sim.Run();

  EXPECT_EQ(store.applied_seq(), last_seq);
  EXPECT_FALSE(store.degraded());
  EXPECT_GT(faulty.fault_stats().put_errors, 0u);
  EXPECT_GT(store.stats().retries, 0u);
  EXPECT_EQ(store.stats().put_failures, 0u);
  // Every batch made it to the backend intact.
  for (uint64_t seq = 1; seq <= last_seq; seq++) {
    EXPECT_TRUE(world.store.Head(store.NameForSeq(seq)).ok()) << seq;
  }
}

TEST(BackendStoreFaultTest, OfflineBackendParksBatchesThenProbeRecovers) {
  TestWorld world;
  FaultyObjectStore faulty(&world.store, &world.sim, FaultInjectionConfig{});
  BackendStore store(&world.host, &faulty, nullptr, FaultTestConfig());

  faulty.set_offline(true);
  const uint64_t seq = store.AddWrite(0, TestPattern(64 * kKiB, 1));
  world.sim.RunUntil(world.sim.now() + kSecond);

  EXPECT_TRUE(store.degraded());
  EXPECT_EQ(store.applied_seq(), 0u);
  EXPECT_GE(store.stats().put_failures, 1u);
  EXPECT_GT(store.stats().retries, 0u);

  faulty.set_offline(false);
  world.sim.Run();
  EXPECT_FALSE(store.degraded());
  EXPECT_EQ(store.applied_seq(), seq);
  EXPECT_TRUE(world.store.Head(store.NameForSeq(seq)).ok());
}

TEST(BackendStoreFaultTest, UnackedPutTimesOutAndRetries) {
  TestWorld world;
  LsvdConfig config = FaultTestConfig();
  config.retry.op_timeout = kSecond;
  BackendStore store(&world.host, &world.store, nullptr, config);

  // The first PUT is stranded: the object never lands and no ack arrives.
  world.store.DropNextPuts(1);
  const uint64_t seq = store.AddWrite(0, TestPattern(64 * kKiB, 2));
  world.sim.Run();

  EXPECT_EQ(store.applied_seq(), seq);
  EXPECT_GE(store.stats().timeouts, 1u);
  EXPECT_GE(store.stats().retries, 1u);
  EXPECT_TRUE(world.store.Head(store.NameForSeq(seq)).ok());
}

TEST(BackendStoreFaultTest, RetryHealsTornObjectLeftByPriorAttempt) {
  TestWorld world;
  BackendStore store(&world.host, &world.store, nullptr, FaultTestConfig());

  // A torn leftover occupies the name the first batch will use (as if an
  // earlier attempt died mid-upload): the immutable-name PUT failure must
  // be healed by delete-and-reupload, not retried blindly.
  std::optional<Status> planted;
  world.store.Put(store.NameForSeq(1), Buffer::Zeros(4096),
                  [&](Status s) { planted = s; });
  world.sim.Run();
  ASSERT_TRUE(planted.has_value() && planted->ok());

  const uint64_t seq = store.AddWrite(0, TestPattern(64 * kKiB, 3));
  world.sim.Run();

  EXPECT_EQ(store.applied_seq(), seq);
  EXPECT_GE(store.stats().retries, 1u);
  const auto have = world.store.Head(store.NameForSeq(seq));
  ASSERT_TRUE(have.ok());
  EXPECT_GT(*have, 64u * kKiB);  // the real object, not the torn stub
}

// --- backend sharding (DESIGN.md §9) ---

TEST(ShardingFormatTest, ShardForSeqRoundRobin) {
  // Unsharded: everything on shard 0.
  EXPECT_EQ(ShardForSeq(1, 1), 0u);
  EXPECT_EQ(ShardForSeq(17, 1), 0u);
  EXPECT_EQ(ShardForSeq(5, 0), 0u);
  // Round-robin by (seq - 1): seq 1 -> shard 0, seq 2 -> shard 1, ...
  for (uint64_t seq = 1; seq <= 12; seq++) {
    EXPECT_EQ(ShardForSeq(seq, 4), (seq - 1) % 4) << seq;
  }
}

TEST(ShardingFormatTest, ConsistencyVectorMatchesBruteForce) {
  for (size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    for (uint64_t through = 0; through <= 20; through++) {
      const auto vec = ConsistencyVector(through, shards);
      ASSERT_EQ(vec.size(), shards == 0 ? 1u : shards);
      std::vector<uint64_t> expect(vec.size(), 0);
      for (uint64_t s = 1; s <= through; s++) {
        expect[ShardForSeq(s, shards)] = s;
      }
      EXPECT_EQ(vec, expect) << "shards=" << shards << " through=" << through;
    }
  }
}

TEST(ShardingFormatTest, CheckpointRoundTripsConsistencyVector) {
  CheckpointState state;
  state.through_seq = 7;
  state.next_seq = 9;
  state.object_map = {{0, 4096, ObjTarget{3, 0}},
                      {8192, 4096, ObjTarget{7, 4096}}};
  state.object_info[3] = ObjectInfo{8192, 4096};
  state.object_info[7] = ObjectInfo{8192, 8192};
  state.deferred_deletes = {{2, 6}};
  state.snapshots = {5};
  state.shard_count = 4;
  state.shard_consistent = ConsistencyVector(7, 4);

  CheckpointState decoded;
  ASSERT_TRUE(DecodeCheckpoint(EncodeCheckpoint(state), &decoded).ok());
  EXPECT_EQ(decoded.through_seq, state.through_seq);
  EXPECT_EQ(decoded.next_seq, state.next_seq);
  EXPECT_EQ(decoded.object_map, state.object_map);
  EXPECT_EQ(decoded.object_info.size(), 2u);
  EXPECT_EQ(decoded.object_info[7].live_bytes, 8192u);
  EXPECT_EQ(decoded.shard_count, 4u);
  EXPECT_EQ(decoded.shard_consistent, (std::vector<uint64_t>{5, 6, 7, 4}));
}

TEST(ShardingFormatTest, UnshardedCheckpointStaysFormatV1) {
  // shard_count <= 1 must encode as the legacy v1 layout — a decode yields
  // no shard fields, and the bytes are identical to a state that never
  // mentioned sharding (so old checkpoints and new unsharded checkpoints
  // are interchangeable).
  CheckpointState state;
  state.through_seq = 3;
  state.next_seq = 4;
  state.object_map = {{0, 4096, ObjTarget{3, 0}}};
  state.object_info[3] = ObjectInfo{4096, 4096};
  const Buffer legacy = EncodeCheckpoint(state);

  CheckpointState one_shard = state;
  one_shard.shard_count = 1;
  one_shard.shard_consistent = {3};
  EXPECT_EQ(EncodeCheckpoint(one_shard), legacy);

  CheckpointState decoded;
  ASSERT_TRUE(DecodeCheckpoint(legacy, &decoded).ok());
  EXPECT_EQ(decoded.shard_count, 0u);
  EXPECT_TRUE(decoded.shard_consistent.empty());
}

TEST(ShardingFormatTest, CheckpointRoundTripsGenerations) {
  // A non-empty generation table upgrades the checkpoint to v3 (the v2
  // layout plus the table, shard fields present even when unsharded); an
  // empty table keeps the legacy encoding byte for byte.
  CheckpointState state;
  state.through_seq = 9;
  state.next_seq = 11;
  state.object_map = {{0, 4096, ObjTarget{9, 0}}};
  state.object_info[9] = ObjectInfo{4096, 4096};
  const Buffer legacy = EncodeCheckpoint(state);

  state.generations[7] = 2;
  state.generations[9] = 1;
  CheckpointState decoded;
  ASSERT_TRUE(DecodeCheckpoint(EncodeCheckpoint(state), &decoded).ok());
  EXPECT_EQ(decoded.generations, state.generations);
  EXPECT_EQ(decoded.object_map, state.object_map);
  EXPECT_EQ(decoded.shard_count, 0u);

  state.generations.clear();
  EXPECT_EQ(EncodeCheckpoint(state), legacy);

  // Sharded + generations compose: both sections survive the round trip.
  state.generations[7] = 3;
  state.shard_count = 4;
  state.shard_consistent = ConsistencyVector(9, 4);
  CheckpointState both;
  ASSERT_TRUE(DecodeCheckpoint(EncodeCheckpoint(state), &both).ok());
  EXPECT_EQ(both.generations, state.generations);
  EXPECT_EQ(both.shard_count, 4u);
  EXPECT_EQ(both.shard_consistent, state.shard_consistent);
}

TEST(ShardingFormatTest, CheckpointRejectsVectorShardCountMismatch) {
  CheckpointState state;
  state.through_seq = 4;
  state.next_seq = 5;
  state.shard_count = 4;
  state.shard_consistent = {4, 2};  // wrong length for 4 shards
  CheckpointState decoded;
  EXPECT_EQ(DecodeCheckpoint(EncodeCheckpoint(state), &decoded).code(),
            StatusCode::kCorruption);
}

class ShardedBackendTest : public ::testing::Test {
 protected:
  static constexpr size_t kShards = 4;

  ShardedBackendTest() : config_(MakeConfig()) {
    for (size_t i = 0; i < kShards; i++) {
      stores_.push_back(std::make_unique<MemObjectStore>(&world_.sim));
      ptrs_.push_back(stores_.back().get());
    }
    store_ = std::make_unique<BackendStore>(&world_.host, ptrs_, nullptr,
                                            config_, &metrics_);
  }

  static LsvdConfig MakeConfig() {
    LsvdConfig c = TestWorld::SmallVolumeConfig();
    c.batch_bytes = 64 * kKiB;
    c.checkpoint_interval_objects = 100;  // checkpoints per-test
    c.gc_enabled = false;
    return c;
  }

  // One full batch -> one data object on ShardForSeq(seq, kShards).
  uint64_t WriteOneObject(uint64_t vlba, uint64_t seed) {
    const uint64_t seq = store_->AddWrite(vlba, TestPattern(64 * kKiB, seed));
    world_.sim.Run();
    return seq;
  }

  void Run() { world_.sim.Run(); }

  TestWorld world_;
  LsvdConfig config_;
  MetricsRegistry metrics_;
  std::vector<std::unique_ptr<MemObjectStore>> stores_;
  std::vector<ObjectStore*> ptrs_;
  std::unique_ptr<BackendStore> store_;
};

TEST_F(ShardedBackendTest, RoundRobinStripePlacement) {
  for (int i = 0; i < 8; i++) {
    WriteOneObject(static_cast<uint64_t>(i) * kMiB, 700 + i);
  }
  EXPECT_EQ(store_->applied_seq(), 8u);
  // Each shard holds exactly its own stripe of the stream and nothing else.
  for (size_t shard = 0; shard < kShards; shard++) {
    const auto names = stores_[shard]->List(DataObjectPrefix("vol"));
    ASSERT_EQ(names.size(), 2u) << shard;
    for (uint64_t seq = 1; seq <= 8; seq++) {
      const bool here = stores_[shard]->Head(DataObjectName("vol", seq)).ok();
      EXPECT_EQ(here, ShardForSeq(seq, kShards) == shard)
          << "seq " << seq << " shard " << shard;
    }
  }
  // Per-shard PUT counters registered and credited.
  for (size_t shard = 0; shard < kShards; shard++) {
    EXPECT_EQ(metrics_
                  .GetCounter("backend.shard" + std::to_string(shard) +
                              ".objects_put")
                  ->value(),
              2u);
  }
  EXPECT_EQ(store_->consistency_vector(),
            (std::vector<uint64_t>{5, 6, 7, 8}));
}

TEST_F(ShardedBackendTest, CheckpointsLiveOnShardZero) {
  for (int i = 0; i < 5; i++) {
    WriteOneObject(static_cast<uint64_t>(i) * kMiB, 710 + i);
  }
  std::optional<Status> cs;
  store_->WriteCheckpoint([&](Status s) { cs = s; });
  Run();
  ASSERT_TRUE(cs->ok());
  EXPECT_EQ(stores_[0]->List(CheckpointPrefix("vol")).size(), 1u);
  for (size_t shard = 1; shard < kShards; shard++) {
    EXPECT_TRUE(stores_[shard]->List(CheckpointPrefix("vol")).empty());
  }
}

TEST_F(ShardedBackendTest, RecoverFromShardedCheckpointAndReplay) {
  for (int i = 0; i < 6; i++) {
    WriteOneObject(static_cast<uint64_t>(i) * kMiB, 720 + i);
  }
  std::optional<Status> cs;
  store_->WriteCheckpoint([&](Status s) { cs = s; });
  Run();
  ASSERT_TRUE(cs->ok());
  // Post-checkpoint tail to replay from the shard streams.
  for (int i = 6; i < 10; i++) {
    WriteOneObject(static_cast<uint64_t>(i) * kMiB, 720 + i);
  }
  const auto extents = store_->object_map().Extents();

  auto fresh = std::make_unique<BackendStore>(&world_.host, ptrs_, nullptr,
                                              config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->applied_seq(), 10u);
  EXPECT_EQ(fresh->next_seq(), 11u);
  EXPECT_EQ(fresh->object_map().Extents(), extents);
}

TEST_F(ShardedBackendTest, ShardTailLossTruncatesGlobalPrefix) {
  for (int i = 0; i < 8; i++) {
    WriteOneObject(static_cast<uint64_t>(i) * kMiB, 730 + i);
  }
  // Shard 2 lost its newest object (seq 7): the single-log prefix rule
  // (§3.5) truncates the *global* stream at the gap, and the survivors past
  // it (seq 8 on shard 3) are stranded and deleted.
  stores_[2]->Delete(DataObjectName("vol", 7), [](Status) {});
  Run();

  auto fresh = std::make_unique<BackendStore>(&world_.host, ptrs_, nullptr,
                                              config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->applied_seq(), 6u);
  EXPECT_EQ(fresh->next_seq(), 7u);
  EXPECT_EQ(stores_[3]->Head(DataObjectName("vol", 8)).status().code(),
            StatusCode::kNotFound);
}

// --- GC policy selection, generations, hot/cold split (docs/GC.md) ---

class BackendGcPolicyTest : public BackendStoreTest {
 protected:
  // The base class's store_ would otherwise outlive metrics_ (derived
  // members are destroyed first), dangling its CallbackGuard.
  ~BackendGcPolicyTest() override { store_.reset(); }

  // Rebuilds the store with GC on and the given victim-selection policy,
  // wiring a visible metrics registry so gating can be asserted.
  void RebuildWithPolicy(GcPolicyKind kind) {
    config_ = MakeConfig();
    config_.gc_enabled = true;
    config_.checkpoint_interval_objects = 2;
    config_.gc_policy = kind;
    // The old store's CallbackGuard must unregister from the old registry
    // before that registry dies (destruction order, DESIGN.md §10).
    store_.reset();
    metrics_ = std::make_unique<MetricsRegistry>();
    store_ = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                            nullptr, config_, metrics_.get());
  }

  // Mixed-lifetime churn: every 64 KiB batch packs four 16 KiB chunks with
  // staggered lifetimes — a hot slot (rewritten within 4 rounds), a medium
  // slot (~12 rounds), a long slot (~30 rounds) and a chunk never touched
  // again within the churn. Objects therefore die piecewise: GC copies the
  // surviving chunks forward, and because every output object still mixes
  // durable and dying data, the copies themselves go partially dead and
  // are re-collected — compounding the generation tag past 1.
  void Churn(uint64_t seed) {
    for (int round = 0; round < 60; round++) {
      store_->AddWrite(static_cast<uint64_t>(round % 4) * 16 * kKiB,
                       TestPattern(16 * kKiB, seed + round));
      store_->AddWrite((8 + static_cast<uint64_t>(round % 12)) * 16 * kKiB,
                       TestPattern(16 * kKiB, seed + 100 + round));
      store_->AddWrite((24 + static_cast<uint64_t>(round % 30)) * 16 * kKiB,
                       TestPattern(16 * kKiB, seed + 200 + round));
      store_->AddWrite((64 + static_cast<uint64_t>(round)) * 16 * kKiB,
                       TestPattern(16 * kKiB, seed + 300 + round));
      Run();
    }
    store_->Seal();
    Run();
  }

  // Headers of every data object currently in the backend.
  std::vector<DataObjectHeader> AllDataHeaders() {
    std::vector<DataObjectHeader> headers;
    for (const auto& name : world_.store.List(DataObjectPrefix("vol"))) {
      std::optional<Result<Buffer>> r;
      world_.store.Get(name, [&](Result<Buffer> rr) { r = std::move(rr); });
      Run();
      DataObjectHeader h;
      EXPECT_TRUE(DecodeDataObjectHeader(r->value(), &h).ok()) << name;
      headers.push_back(h);
    }
    return headers;
  }

  std::unique_ptr<MetricsRegistry> metrics_;
};

TEST_F(BackendGcPolicyTest, EveryPolicyReclaimsAndRecoversConsistently) {
  for (GcPolicyKind kind :
       {GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit,
        GcPolicyKind::kAgeBucketed}) {
    RebuildWithPolicy(kind);
    Churn(100);
    EXPECT_GT(store_->stats().gc_objects_cleaned, 0u)
        << GcPolicyKindName(kind);
    EXPECT_GE(store_->Utilization(), config_.gc_low_watermark - 0.05)
        << GcPolicyKindName(kind);

    auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                                nullptr, config_);
    std::optional<Status> s;
    fresh->Recover([&](Status st) { s = st; });
    Run();
    ASSERT_TRUE(s->ok()) << GcPolicyKindName(kind);
    EXPECT_EQ(fresh->object_map().Extents(), store_->object_map().Extents())
        << GcPolicyKindName(kind);

    // Reset the backend between policies (objects are namespaced by seq).
    for (const auto& name : world_.store.List("")) {
      world_.store.Delete(name, [](Status) {});
    }
    Run();
  }
}

TEST_F(BackendGcPolicyTest, GreedyDefaultKeepsV1HeadersAndNoExtraMetrics) {
  // The compatibility guarantee: a plain greedy config never writes a v2
  // header (generation stays 0 everywhere) and registers none of the
  // extended GC metrics — outputs stay bit-identical to the pre-policy code.
  RebuildWithPolicy(GcPolicyKind::kGreedy);
  Churn(200);
  ASSERT_GT(store_->stats().gc_objects_cleaned, 0u);
  for (const auto& h : AllDataHeaders()) {
    EXPECT_EQ(h.generation, 0u) << "seq " << h.seq;
  }
  const std::string json = metrics_->ToJson();
  EXPECT_EQ(json.find("backend.gc_policy"), std::string::npos);
  EXPECT_EQ(json.find("backend.gc.waf"), std::string::npos);
  EXPECT_EQ(json.find("backend.gc.cold_objects"), std::string::npos);
}

TEST_F(BackendGcPolicyTest, ExtendedPolicyTagsGcGenerations) {
  RebuildWithPolicy(GcPolicyKind::kCostBenefit);
  Churn(300);
  ASSERT_GT(store_->stats().gc_objects_cleaned, 0u);
  // GC output carries 1 + max victim generation, persisted via v2 headers.
  uint32_t max_gen = 0;
  for (const auto& h : AllDataHeaders()) {
    max_gen = std::max(max_gen, h.generation);
  }
  EXPECT_GE(max_gen, 1u);
  // Extended metrics are registered and live.
  const std::string json = metrics_->ToJson();
  EXPECT_NE(json.find("backend.gc_policy"), std::string::npos);
  EXPECT_NE(json.find("backend.gc.waf"), std::string::npos);
  EXPECT_GT(metrics_->GetGauge("backend.gc.cost_benefit_score")->value(),
            0.0);
}

TEST_F(BackendGcPolicyTest, GenerationsSurviveRecoveryReplay) {
  RebuildWithPolicy(GcPolicyKind::kCostBenefit);
  Churn(400);
  ASSERT_GT(store_->stats().gc_objects_cleaned, 0u);

  // A fresh store recovers the same map (decoding v2 headers during the
  // post-checkpoint replay) and keeps collecting with generations intact.
  auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->object_map().Extents(), store_->object_map().Extents());

  store_ = std::move(fresh);
  Churn(500);
  EXPECT_GT(store_->stats().gc_objects_cleaned, 0u);
  uint32_t max_gen = 0;
  for (const auto& h : AllDataHeaders()) {
    max_gen = std::max(max_gen, h.generation);
  }
  EXPECT_GE(max_gen, 2u);  // re-cleaned GC output climbed past gen 1
}

TEST(BackendHeatSplitTest, HotAndColdWritesLandInSeparateObjects) {
  TestWorld world;
  const uint64_t region = 16 * kMiB;
  const uint64_t base = *world.host.AllocRegion(region);
  WriteCache cache(&world.host, base, region,
                   StageCosts{0, 0, 0, 0, 0, 0, 0, 0, 0});
  std::optional<Status> fs;
  cache.Format([&](Status s) { fs = s; });
  world.sim.Run();
  ASSERT_TRUE(fs.has_value() && fs->ok());
  cache.EnableHeatTracking(10 * kSecond);

  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.batch_bytes = 64 * kKiB;
  config.gc_enabled = false;
  config.gc_hot_cold_split = true;
  MetricsRegistry metrics;
  BackendStore store(&world.host, &world.store, &cache, config, &metrics);

  // Heat up the 1 MiB region at vlba 0 with repeated appends; the region at
  // 8 MiB stays untouched (heat 0 < gc_heat_threshold).
  for (int i = 0; i < 3; i++) {
    std::optional<Status> s;
    cache.Append(0, TestPattern(4096, 900 + i), 1,
                 [&](Status st) { s = st; });
    world.sim.Run();
    ASSERT_TRUE(s.has_value() && s->ok());
  }
  EXPECT_GE(cache.WriteHeat(0), config.gc_heat_threshold);
  EXPECT_EQ(cache.WriteHeat(8 * kMiB), 0.0);

  // One hot and one cold write: routed to separate open batches with their
  // own sequence numbers, sealed as two objects, one counted cold.
  Buffer hot_data = TestPattern(32 * kKiB, 901);
  Buffer cold_data = TestPattern(32 * kKiB, 902);
  const uint64_t hot_seq = store.AddWrite(0, hot_data);
  const uint64_t cold_seq = store.AddWrite(8 * kMiB, cold_data);
  EXPECT_NE(hot_seq, cold_seq);
  store.Seal();
  world.sim.Run();

  EXPECT_EQ(store.stats().objects_put, 2u);
  EXPECT_EQ(metrics.GetCounter("backend.gc.cold_objects")->value(), 1u);
  // Both streams are readable through the object map.
  for (const auto& [vlba, data] :
       std::vector<std::pair<uint64_t, Buffer>>{{0, hot_data},
                                                {8 * kMiB, cold_data}}) {
    auto t = store.object_map().LookupOne(vlba);
    ASSERT_TRUE(t.has_value()) << vlba;
    std::optional<Result<Buffer>> r;
    store.Fetch(*t, 32 * kKiB, [&](Result<Buffer> rr) { r = std::move(rr); });
    world.sim.Run();
    ASSERT_TRUE(r.has_value() && r->ok()) << vlba;
    EXPECT_EQ(r->value(), data) << vlba;
  }
}

TEST(ShardedBackendFaultTest, OneShardOfflineParksOnlyItsStripe) {
  TestWorld world;
  Simulator& sim = world.sim;
  MemObjectStore mem0(&sim), mem1(&sim);
  FaultyObjectStore faulty1(&mem1, &sim, FaultInjectionConfig{});
  LsvdConfig config = FaultTestConfig();
  BackendStore store(&world.host, {&mem0, &faulty1}, nullptr, config);

  faulty1.set_offline(true);
  uint64_t last_seq = 0;
  for (int i = 0; i < 4; i++) {
    last_seq = store.AddWrite(static_cast<uint64_t>(i) * kMiB,
                              TestPattern(64 * kKiB, 740 + i));
  }
  sim.RunUntil(sim.now() + kSecond);

  // Shard 1 (even seqs) is parked; shard 0 keeps absorbing its stripe, but
  // the applied prefix stops before the first parked object.
  EXPECT_TRUE(store.degraded());
  EXPECT_FALSE(store.shard_degraded(0));
  EXPECT_TRUE(store.shard_degraded(1));
  EXPECT_EQ(store.applied_seq(), 1u);
  EXPECT_TRUE(mem0.Head(DataObjectName("vol", 3)).ok());
  EXPECT_EQ(mem1.Head(DataObjectName("vol", 2)).status().code(),
            StatusCode::kNotFound);

  // The shard comes back: its probe clears the flag and the stream drains.
  faulty1.set_offline(false);
  sim.Run();
  EXPECT_FALSE(store.degraded());
  EXPECT_EQ(store.applied_seq(), last_seq);
  EXPECT_EQ(store.consistency_vector(),
            (std::vector<uint64_t>{3, 4}));
}

}  // namespace
}  // namespace lsvd
