// End-to-end tests for TRIM/discard through the full stack (DESIGN.md §13):
// disk API validation, read routing (trimmed ranges read as zeros from the
// write-cache trim map and from the punched backend map), journal replay and
// cache-loss recovery of trim records, backend map punching with GC
// accounting, and the crash-stable generation scoring that rides along.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/lsvd/backend_store.h"
#include "src/lsvd/gc_policy.h"
#include "src/lsvd/lsvd_disk.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

// --- disk-level semantics ---

class TrimDiskTest : public ::testing::Test {
 protected:
  TrimDiskTest() {
    config_ = TestWorld::SmallVolumeConfig();
    disk_ = std::make_unique<LsvdDisk>(&world_.host, &world_.store, config_);
    EXPECT_TRUE(OpenSync(&world_.sim, disk_.get(), &LsvdDisk::Create).ok());
  }

  TestWorld world_;
  LsvdConfig config_;
  std::unique_ptr<LsvdDisk> disk_;
};

TEST_F(TrimDiskTest, RejectsBadArguments) {
  EXPECT_EQ(TrimSync(&world_.sim, disk_.get(), 100, 4096).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TrimSync(&world_.sim, disk_.get(), 0, 100).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TrimSync(&world_.sim, disk_.get(), 0, 0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TrimSync(&world_.sim, disk_.get(), config_.volume_size, 4096)
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(TrimDiskTest, TrimmedWriteCacheDataReadsZeros) {
  Buffer data = TestPattern(32 * kKiB, 1);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), kMiB, data).ok());
  ASSERT_TRUE(TrimSync(&world_.sim, disk_.get(), kMiB, 32 * kKiB).ok());

  auto r = ReadSync(&world_.sim, disk_.get(), kMiB, 32 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsAllZeros());
  EXPECT_EQ(disk_->stats().trims, 1u);
  EXPECT_EQ(disk_->stats().trim_bytes, 32u * kKiB);
}

TEST_F(TrimDiskTest, PartialTrimZerosOnlyTheTrimmedRange) {
  Buffer data = TestPattern(48 * kKiB, 2);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, data).ok());
  // Punch the middle 16 KiB.
  ASSERT_TRUE(TrimSync(&world_.sim, disk_.get(), 16 * kKiB, 16 * kKiB).ok());

  auto r = ReadSync(&world_.sim, disk_.get(), 0, 48 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Slice(0, 16 * kKiB), data.Slice(0, 16 * kKiB));
  EXPECT_TRUE(r->Slice(16 * kKiB, 16 * kKiB).IsAllZeros());
  EXPECT_EQ(r->Slice(32 * kKiB, 16 * kKiB), data.Slice(32 * kKiB, 16 * kKiB));
}

TEST_F(TrimDiskTest, OverwriteAfterTrimReturnsNewData) {
  ASSERT_TRUE(
      WriteSync(&world_.sim, disk_.get(), 0, TestPattern(16 * kKiB, 3)).ok());
  ASSERT_TRUE(TrimSync(&world_.sim, disk_.get(), 0, 16 * kKiB).ok());
  Buffer newer = TestPattern(16 * kKiB, 4);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, newer).ok());
  auto r = ReadSync(&world_.sim, disk_.get(), 0, 16 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, newer);
}

TEST_F(TrimDiskTest, TrimPunchesBackendMapAndInvalidatesCaches) {
  // Push data all the way to the backend, evict the write cache so reads
  // would route there, then trim.
  Buffer data = TestPattern(256 * kKiB, 5);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, data).ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  disk_->write_cache().EvictReleasable();
  ASSERT_EQ(disk_->backend().object_map().mapped_bytes(), 256u * kKiB);
  // Warm the read cache over the range so the trim must invalidate it.
  ASSERT_TRUE(ReadSync(&world_.sim, disk_.get(), 0, 64 * kKiB).ok());
  world_.sim.Run();

  ASSERT_TRUE(TrimSync(&world_.sim, disk_.get(), 0, 128 * kKiB).ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());

  // The backend map is punched and the trimmed half reads zeros even after
  // the write cache forgets the trim record.
  EXPECT_EQ(disk_->backend().object_map().mapped_bytes(), 128u * kKiB);
  disk_->write_cache().EvictReleasable();
  auto r = ReadSync(&world_.sim, disk_.get(), 0, 256 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Slice(0, 128 * kKiB).IsAllZeros());
  EXPECT_EQ(r->Slice(128 * kKiB, 128 * kKiB),
            data.Slice(128 * kKiB, 128 * kKiB));
}

TEST_F(TrimDiskTest, TrimReplaysAfterClientCrash) {
  // Trim journal record survives a crash and replays into the backend.
  Buffer data = TestPattern(64 * kKiB, 6);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, data).ok());
  ASSERT_TRUE(FlushSync(&world_.sim, disk_.get()).ok());
  ASSERT_TRUE(TrimSync(&world_.sim, disk_.get(), 0, 32 * kKiB).ok());
  ASSERT_TRUE(FlushSync(&world_.sim, disk_.get()).ok());

  const DiskRegions regions = disk_->regions();
  disk_->Kill();
  world_.host.ssd()->PowerFail();
  world_.sim.Run();

  disk_ = std::make_unique<LsvdDisk>(&world_.host, &world_.store, config_,
                                     regions);
  ASSERT_TRUE(
      OpenSync(&world_.sim, disk_.get(), &LsvdDisk::OpenAfterCrash).ok());
  auto r = ReadSync(&world_.sim, disk_.get(), 0, 64 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Slice(0, 32 * kKiB).IsAllZeros());
  EXPECT_EQ(r->Slice(32 * kKiB, 32 * kKiB), data.Slice(32 * kKiB, 32 * kKiB));

  // And the replayed trim reaches the backend on drain.
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  EXPECT_EQ(disk_->backend().object_map().mapped_bytes(), 32u * kKiB);
}

TEST_F(TrimDiskTest, TrimSurvivesTotalCacheLoss) {
  // Once the trim object lands in the backend, even losing the whole SSD
  // cache must not resurrect the trimmed data.
  Buffer data = TestPattern(64 * kKiB, 7);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, data).ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  ASSERT_TRUE(TrimSync(&world_.sim, disk_.get(), 0, 32 * kKiB).ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());

  disk_->Kill();
  world_.sim.Run();
  ClientHost host2(&world_.sim, TestWorld::InstantHostConfig());
  LsvdDisk fresh(&host2, &world_.store, config_);
  ASSERT_TRUE(OpenSync(&world_.sim, &fresh, &LsvdDisk::OpenCacheLost).ok());
  auto r = ReadSync(&world_.sim, &fresh, 0, 64 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Slice(0, 32 * kKiB).IsAllZeros());
  EXPECT_EQ(r->Slice(32 * kKiB, 32 * kKiB), data.Slice(32 * kKiB, 32 * kKiB));
}

// --- backend-level accounting ---

class TrimBackendTest : public ::testing::Test {
 protected:
  TrimBackendTest() {
    config_ = TestWorld::SmallVolumeConfig();
    config_.batch_bytes = 64 * kKiB;
    config_.checkpoint_interval_objects = 4;
    config_.gc_enabled = false;
    store_ = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                            nullptr, config_);
  }

  void Run() { world_.sim.Run(); }

  TestWorld world_;
  LsvdConfig config_;
  std::unique_ptr<BackendStore> store_;
};

TEST_F(TrimBackendTest, TrimSealsOpenWriteBatchAndPunchesMap) {
  // A trim must not share a batch with writes that precede it (the write
  // could be ordered after the trim within the object's extent list).
  const uint64_t wseq = store_->AddWrite(0, TestPattern(16 * kKiB, 1));
  const uint64_t tseq = store_->AddTrim(0, 8 * kKiB);
  EXPECT_NE(wseq, tseq);
  // A write after the trim may share the trim's batch (write follows trim in
  // apply order, which is correct).
  const uint64_t wseq2 = store_->AddWrite(0, TestPattern(4 * kKiB, 2));
  EXPECT_EQ(wseq2, tseq);
  store_->Seal();
  Run();
  // [0,8K) punched by the trim, [0,4K) rewritten by the second write.
  EXPECT_EQ(store_->object_map().mapped_bytes(), 12u * kKiB);
  // The displaced half died in its object.
  const auto info = store_->object_info_for(wseq);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->total_bytes, 16u * kKiB);
  EXPECT_EQ(info->live_bytes, 8u * kKiB);
}

TEST_F(TrimBackendTest, TrimRecordsSurviveBackendRecovery) {
  store_->AddWrite(0, TestPattern(64 * kKiB, 3));
  Run();
  store_->AddTrim(16 * kKiB, 16 * kKiB);
  store_->AddWrite(kMiB, TestPattern(16 * kKiB, 4));
  store_->Seal();
  Run();
  ASSERT_EQ(store_->object_map().mapped_bytes(), 64u * kKiB);

  auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());
  EXPECT_EQ(fresh->object_map().Extents(), store_->object_map().Extents());
  EXPECT_FALSE(fresh->object_map().LookupOne(16 * kKiB).has_value());
}

TEST_F(TrimBackendTest, PagedMapMatchesFlatThroughTrimsAndRecovery) {
  // Same op sequence against a paged-map store: identical observable map.
  LsvdConfig paged_config = config_;
  paged_config.volume_name = "volp";  // shares world_.store with store_
  paged_config.map_resident_bytes = 16 * kKiB;  // force eviction traffic
  paged_config.map_page_span = kMiB;
  auto paged = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, paged_config);
  // Interleave the same writes and trims into both stores.
  Rng rng(9);
  for (int i = 0; i < 40; i++) {
    const uint64_t vlba = rng.Uniform(256) * 16 * kKiB;
    if (i % 5 == 4) {
      store_->AddTrim(vlba, 32 * kKiB);
      paged->AddTrim(vlba, 32 * kKiB);
    } else {
      store_->AddWrite(vlba, TestPattern(16 * kKiB, 50 + i));
      paged->AddWrite(vlba, TestPattern(16 * kKiB, 50 + i));
    }
    Run();
  }
  store_->Seal();
  paged->Seal();
  Run();
  EXPECT_EQ(store_->object_map().mapped_bytes(),
            paged->object_map().mapped_bytes());
  EXPECT_EQ(store_->object_map().Extents(), paged->object_map().Extents());
  ASSERT_NE(paged->paged_object_map(), nullptr);
  EXPECT_LE(paged->paged_object_map()->ResidentBytes(),
            paged_config.map_resident_bytes);
}

// --- generation scoring across recovery (the GC bugfix regression) ---

class TrimGcGenerationTest : public ::testing::Test {
 protected:
  TrimGcGenerationTest() {
    config_ = TestWorld::SmallVolumeConfig();
    config_.batch_bytes = 64 * kKiB;
    config_.checkpoint_interval_objects = 2;
    config_.gc_enabled = true;
    config_.gc_policy = GcPolicyKind::kCostBenefit;
    store_ = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                            nullptr, config_);
  }

  void Run() { world_.sim.Run(); }

  TestWorld world_;
  LsvdConfig config_;
  std::unique_ptr<BackendStore> store_;
};

TEST_F(TrimGcGenerationTest, RecoveredStoreScoresVictimsIdentically) {
  // Drive enough overwrite traffic that GC runs and produces generation-
  // tagged output objects that survive to the end of the run. Each 64 KiB
  // batch packs one hot 32 KiB chunk and one cold 32 KiB chunk: churning
  // the hot slots half-kills those objects (cold-only objects would stay
  // fully live and never be GC-eligible), GC relocates the cold halves,
  // and the relocated generation-tagged output is never overwritten.
  Rng rng(11);
  for (uint64_t i = 0; i < 16; i++) {
    store_->AddWrite(rng.Uniform(4) * 32 * kKiB,
                     TestPattern(32 * kKiB, 200 + i));
    Run();
    store_->AddWrite(kMiB + i * 32 * kKiB, TestPattern(32 * kKiB, 100 + i));
    Run();
  }
  for (int round = 0; round < 60; round++) {
    const uint64_t slot = rng.Uniform(4);
    store_->AddWrite(slot * 32 * kKiB,
                     TestPattern(32 * kKiB, 500 + round));
    Run();
  }
  store_->Seal();
  Run();
  ASSERT_GT(store_->stats().gc_objects_cleaned, 0u);
  const auto& generations = store_->object_generations();
  bool any_tagged = false;
  for (const auto& [seq, gen] : generations) {
    any_tagged |= gen > 0;
  }
  ASSERT_TRUE(any_tagged) << "workload produced no GC output objects";

  // Recover a fresh store from the backend alone.
  auto fresh = std::make_unique<BackendStore>(&world_.host, &world_.store,
                                              nullptr, config_);
  std::optional<Status> s;
  fresh->Recover([&](Status st) { s = st; });
  Run();
  ASSERT_TRUE(s->ok());

  // Generation tags are part of the persisted object format, so they must
  // recover exactly...
  EXPECT_EQ(fresh->object_generations(), generations);

  // ...and therefore every surviving GC-output object scores identically
  // pre- and post-crash under the generation-aware policies: the candidates
  // the victim scan builds for generation-tagged objects are derived from
  // persisted state only (sequence-clock age, generation floor), so the
  // seal clock — which does NOT survive recovery — never leaks in.
  for (GcPolicyKind kind :
       {GcPolicyKind::kCostBenefit, GcPolicyKind::kAgeBucketed}) {
    const auto policy = GcPolicy::Create(kind);
    for (const auto& [seq, gen] : generations) {
      if (gen == 0) {
        continue;  // client data scores from the (volatile) age by design
      }
      const auto before = store_->gc_candidate_for(seq);
      const auto after = fresh->gc_candidate_for(seq);
      ASSERT_TRUE(before.has_value());
      ASSERT_TRUE(after.has_value());
      EXPECT_DOUBLE_EQ(policy->Score(*before), policy->Score(*after))
          << GcPolicyKindName(kind) << " seq " << seq;
    }
  }
}

}  // namespace
}  // namespace lsvd
