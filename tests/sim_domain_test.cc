// Unit tests for the parallel per-domain engine (DESIGN.md §14): windowed
// execution primitives on Simulator, cross-domain channel ordering — the
// (deliver, channel, seq) determinism tie-break, including simultaneous
// timestamps from different source domains — barrier tasks, and invariance
// of results across worker-thread counts.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "src/sim/cross_domain_channel.h"
#include "src/sim/sim_domain.h"
#include "src/sim/simulator.h"
#include "src/util/units.h"

namespace lsvd {
namespace {

constexpr Nanos kHop = 100 * kMicrosecond;

TEST(SimulatorWindowTest, RunBeforeStopsAtLimit) {
  Simulator sim;
  std::vector<int> ran;
  sim.At(10, [&] { ran.push_back(1); });
  sim.At(20, [&] { ran.push_back(2); });
  sim.At(30, [&] { ran.push_back(3); });

  EXPECT_EQ(sim.next_event_time(), Nanos{10});
  // Strict upper bound: the t=20 event is outside [.., 20).
  EXPECT_EQ(sim.RunBefore(20), 1u);
  EXPECT_EQ(ran, std::vector<int>({1}));
  EXPECT_EQ(sim.next_event_time(), Nanos{20});

  EXPECT_EQ(sim.RunBefore(31), 2u);
  EXPECT_EQ(ran, std::vector<int>({1, 2, 3}));
  EXPECT_EQ(sim.next_event_time(), Simulator::kNoEventTime);
}

TEST(SimulatorWindowTest, AdvanceToMovesIdleClockForward) {
  Simulator sim;
  sim.AdvanceTo(500);
  EXPECT_EQ(sim.now(), Nanos{500});
  sim.AdvanceTo(100);  // never backwards
  EXPECT_EQ(sim.now(), Nanos{500});
}

// Events scheduled inside one domain never need a channel; results match a
// plain Simulator run even with no channels (infinite lookahead => one
// window).
TEST(SimDomainTest, SingleDomainMatchesPlainSimulator) {
  std::vector<Nanos> plain;
  {
    Simulator sim;
    for (Nanos t : {30, 10, 20}) {
      sim.At(t, [&, t] { plain.push_back(t); });
    }
    sim.Run();
  }
  std::vector<Nanos> domained;
  {
    SimDomainGroup group;
    SimDomain* d = group.AddDomain("only");
    for (Nanos t : {30, 10, 20}) {
      d->sim()->At(t, [&, t] { domained.push_back(t); });
    }
    group.Run(4);
  }
  EXPECT_EQ(plain, domained);
}

// Messages from different source domains arriving at the same destination
// timestamp are delivered in channel-id order — creation order, which
// callers key to stable topology — regardless of which source sent first in
// wall-clock terms.
TEST(SimDomainTest, SimultaneousArrivalsOrderByChannelId) {
  for (int threads : {1, 2, 4}) {
    SimDomainGroup group;
    SimDomain* dst = group.AddDomain("dst");
    std::vector<SimDomain*> srcs;
    std::vector<CrossDomainChannel*> chans;
    for (int i = 0; i < 3; i++) {
      srcs.push_back(group.AddDomain("src" + std::to_string(i)));
      chans.push_back(group.Connect(srcs.back(), dst, kHop));
    }
    std::vector<int> order;
    // All three sources fire in the same window and their messages carry
    // the same delivery timestamp; only the channel id can break the tie.
    for (int i = 0; i < 3; i++) {
      srcs[static_cast<size_t>(i)]->sim()->At(Nanos{10}, [&, i] {
        chans[static_cast<size_t>(i)]->SendAfter(kHop, [&, i] {
          order.push_back(i);
        });
      });
    }
    group.Run(threads);
    EXPECT_EQ(order, std::vector<int>({0, 1, 2})) << "threads=" << threads;
    EXPECT_EQ(group.messages_delivered(), 3u);
  }
}

// Two same-timestamp sends on one channel keep their send order (per-channel
// seq is the final tie-break).
TEST(SimDomainTest, SameChannelSameTimestampIsFifo) {
  SimDomainGroup group;
  SimDomain* a = group.AddDomain("a");
  SimDomain* b = group.AddDomain("b");
  CrossDomainChannel* ch = group.Connect(a, b, kHop);
  std::vector<int> order;
  a->sim()->At(Nanos{0}, [&] {
    ch->SendAfter(kHop, [&] { order.push_back(1); });
    ch->SendAfter(kHop, [&] { order.push_back(2); });
  });
  group.Run(2);
  EXPECT_EQ(order, std::vector<int>({1, 2}));
}

#ifdef NDEBUG
// Release builds clamp a below-lookahead delay instead of asserting: the
// message lands exactly min_delay after the send, never earlier.
TEST(SimDomainTest, SendBelowLookaheadClampsInRelease) {
  SimDomainGroup group;
  SimDomain* a = group.AddDomain("a");
  SimDomain* b = group.AddDomain("b");
  CrossDomainChannel* ch = group.Connect(a, b, kHop);
  Nanos delivered = -1;
  a->sim()->At(Nanos{7}, [&] {
    ch->SendAfter(Nanos{1}, [&] { delivered = b->sim()->now(); });
  });
  group.Run(1);
  EXPECT_EQ(delivered, Nanos{7} + kHop);
}
#endif

// A deterministic ping-pong cascade: the full per-domain event traces must
// be byte-identical for every thread count (and for a re-run with the same
// count). Each domain appends only to its own trace, so recording is
// race-free under any scheduling.
TEST(SimDomainTest, PingPongTraceInvariantAcrossThreadCounts) {
  struct TraceEntry {
    Nanos t;
    int hop;
    bool operator==(const TraceEntry& o) const {
      return t == o.t && hop == o.hop;
    }
  };
  auto run = [](int threads) {
    SimDomainGroup group;
    SimDomain* a = group.AddDomain("a");
    SimDomain* b = group.AddDomain("b");
    CrossDomainChannel* ab = group.Connect(a, b, kHop);
    CrossDomainChannel* ba = group.Connect(b, a, kHop);
    std::vector<TraceEntry> trace_a, trace_b;
    // 64 round trips, with a little same-domain work between hops.
    std::function<void(int)> bounce_a = [&](int n) {
      trace_a.push_back({a->sim()->now(), n});
      if (n >= 128) {
        return;
      }
      a->sim()->After(3, [&, n] {
        ab->SendAfter(kHop + n, [&, n] {
          trace_b.push_back({b->sim()->now(), n});
          ba->SendAfter(kHop, [&, n] { bounce_a(n + 2); });
        });
      });
    };
    a->sim()->At(Nanos{0}, [&] { bounce_a(0); });
    group.Run(threads);
    std::vector<TraceEntry> merged = trace_a;
    merged.insert(merged.end(), trace_b.begin(), trace_b.end());
    return merged;
  };
  const auto base = run(1);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, run(2));
  EXPECT_EQ(base, run(4));
  EXPECT_EQ(run(4), run(4));
}

// Barrier tasks run with every domain quiesced and advanced to the task
// time; a task may itself send on a channel and the message still honors
// the lookahead.
TEST(SimDomainTest, BarrierTaskSeesQuiescedDomainsAndMaySend) {
  SimDomainGroup group;
  SimDomain* a = group.AddDomain("a");
  SimDomain* b = group.AddDomain("b");
  CrossDomainChannel* ab = group.Connect(a, b, kHop);
  int b_events = 0;
  b->sim()->At(Nanos{50}, [&] { b_events++; });
  // Long-idle domain a gets periodic work so the run outlives the task time.
  a->sim()->At(5 * kHop, [&] {});

  Nanos a_seen = -1, b_seen = -1, delivered = -1;
  group.At(2 * kHop, [&] {
    a_seen = a->sim()->now();
    b_seen = b->sim()->now();
    ab->SendAfter(kHop, [&] { delivered = b->sim()->now(); });
  });
  group.Run(2);
  EXPECT_EQ(a_seen, 2 * kHop);
  EXPECT_EQ(b_seen, 2 * kHop);
  EXPECT_EQ(delivered, 3 * kHop);
  EXPECT_EQ(b_events, 1);
  EXPECT_GE(group.windows(), 1u);
}

// Regression for the fleet control plane's heartbeat-vs-lease-expiry race
// (docs/FLEET.md): a channel message delivering at exactly time T and a
// local timer event at T on the receiving domain must interleave the same
// way at every thread count. The engine runs local events before same-time
// deliveries (a delivery at T quiesces the window first), so the lease
// check at T never observes a heartbeat carrying timestamp T — which is why
// FleetController's expiry test is a strict '>' on the lease age.
TEST(SimDomainTest, LocalEventBeforeSameTimeDeliveryAtAnyThreadCount) {
  std::vector<std::string> reference;
  for (int threads : {1, 2, 4}) {
    SimDomainGroup group;
    SimDomain* host = group.AddDomain("host");
    SimDomain* control = group.AddDomain("control");
    CrossDomainChannel* hb = group.Connect(host, control, kHop);
    std::vector<std::string> order;
    // Heartbeat sent at T-hop arrives at exactly T; the lease check fires
    // at T locally on the control domain.
    host->sim()->At(Nanos{10}, [&] {
      hb->SendAfter(kHop, [&] { order.push_back("heartbeat@T"); });
    });
    control->sim()->At(Nanos{10} + kHop, [&] {
      order.push_back("lease-check@T");
    });
    // And the mirror pair one interval later, to catch order flapping
    // between windows.
    host->sim()->At(Nanos{10} + kHop, [&] {
      hb->SendAfter(kHop, [&] { order.push_back("heartbeat@T2"); });
    });
    control->sim()->At(Nanos{10} + 2 * kHop, [&] {
      order.push_back("lease-check@T2");
    });
    group.Run(threads);
    ASSERT_EQ(order.size(), 4u) << "threads=" << threads;
    if (reference.empty()) {
      reference = order;
      EXPECT_EQ(order[0], "lease-check@T");
      EXPECT_EQ(order[1], "heartbeat@T");
    } else {
      EXPECT_EQ(order, reference) << "threads=" << threads;
    }
  }
}

// The group is re-entrant: benches alternate setup phases (sequential-ish
// single events) with Run calls; stats accumulate monotonically.
TEST(SimDomainTest, RunIsReentrantAcrossPhases) {
  SimDomainGroup group;
  SimDomain* a = group.AddDomain("a");
  SimDomain* b = group.AddDomain("b");
  CrossDomainChannel* ab = group.Connect(a, b, kHop);
  int got = 0;
  a->sim()->At(Nanos{1}, [&] { ab->SendAfter(kHop, [&] { got++; }); });
  group.Run(2);
  EXPECT_EQ(got, 1);
  const uint64_t w1 = group.windows();
  a->sim()->At(a->sim()->now() + 1, [&] {
    ab->SendAfter(kHop, [&] { got++; });
  });
  group.Run(2);
  EXPECT_EQ(got, 2);
  EXPECT_GT(group.windows(), w1);
  EXPECT_EQ(group.messages_delivered(), 2u);
}

}  // namespace
}  // namespace lsvd
