// Randomized robustness tests: every on-disk/on-object codec must either
// decode correctly or return an error — never crash, never accept corrupt
// input — under random mutations; plus reference-model property tests for
// the run allocator and Buffer.
#include <gtest/gtest.h>

#include <map>

#include "src/lsvd/journal.h"
#include "src/lsvd/object_format.h"
#include "src/util/buffer.h"
#include "src/util/crc32c.h"
#include "src/util/rng.h"
#include "src/util/run_allocator.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

class CodecFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzz, JournalHeaderNeverAcceptsCorruption) {
  Rng rng(GetParam());
  JournalRecord rec;
  rec.seq = rng.Next() % 100000;
  rec.batch_seq = rng.Next() % 1000;
  const int n = 1 + static_cast<int>(rng.Uniform(10));
  for (int i = 0; i < n; i++) {
    rec.extents.push_back(
        {rng.Uniform(1 << 20) * kBlockSize, (1 + rng.Uniform(4)) * kBlockSize});
  }
  uint64_t data_len = 0;
  for (const auto& e : rec.extents) {
    data_len += e.len;
  }
  rec.data = TestPattern(data_len, GetParam());
  auto header = EncodeJournalRecord(rec).Slice(0, kBlockSize).ToBytes();

  // Unmutated: decodes and matches.
  JournalRecord out;
  uint64_t out_len = 0;
  ASSERT_TRUE(
      DecodeJournalHeader(Buffer::FromBytes(header), &out, &out_len).ok());
  ASSERT_EQ(out.seq, rec.seq);
  ASSERT_EQ(out_len, data_len);

  // 200 random single-byte mutations: every one must be rejected (the CRC
  // covers the whole header block).
  for (int trial = 0; trial < 200; trial++) {
    auto mutated = header;
    const size_t pos = rng.Uniform(mutated.size());
    const auto bit = static_cast<uint8_t>(1u << rng.Uniform(8));
    mutated[pos] ^= bit;
    JournalRecord m;
    uint64_t ml = 0;
    const Status s = DecodeJournalHeader(Buffer::FromBytes(mutated), &m, &ml);
    EXPECT_FALSE(s.ok()) << "mutation at byte " << pos << " accepted";
  }
}

TEST_P(CodecFuzz, ObjectHeaderNeverAcceptsCorruption) {
  Rng rng(GetParam() + 100);
  DataObjectHeader header;
  header.seq = rng.Next() % 100000;
  const int n = 1 + static_cast<int>(rng.Uniform(50));
  Buffer data;
  for (int i = 0; i < n; i++) {
    const uint64_t len = (1 + rng.Uniform(4)) * kBlockSize;
    header.extents.push_back({rng.Uniform(1 << 20) * kBlockSize, len,
                              rng.Bernoulli(0.3) ? rng.Next() % 100 : 0,
                              rng.Next() % 4096});
    data.AppendZeros(len);
  }
  Buffer object = EncodeDataObject(header, data);
  auto prefix = object.Slice(0, DataObjectHeaderSize(header.extents.size()))
                    .ToBytes();

  DataObjectHeader out;
  ASSERT_TRUE(DecodeDataObjectHeader(Buffer::FromBytes(prefix), &out).ok());
  ASSERT_EQ(out.extents.size(), header.extents.size());

  for (int trial = 0; trial < 200; trial++) {
    auto mutated = prefix;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    DataObjectHeader m;
    EXPECT_FALSE(DecodeDataObjectHeader(Buffer::FromBytes(mutated), &m).ok())
        << "mutation at byte " << pos << " accepted";
  }
}

TEST_P(CodecFuzz, CheckpointNeverAcceptsCorruption) {
  Rng rng(GetParam() + 200);
  CheckpointState state;
  state.through_seq = rng.Next() % 10000;
  state.next_seq = state.through_seq + 1;
  const int n = static_cast<int>(rng.Uniform(40));
  for (int i = 0; i < n; i++) {
    state.object_map.push_back({rng.Uniform(1 << 20) * kBlockSize,
                                (1 + rng.Uniform(8)) * kBlockSize,
                                ObjTarget{rng.Next() % 1000, rng.Uniform(1 << 22)}});
    state.object_info[rng.Next() % 1000] =
        ObjectInfo{rng.Uniform(1 << 24), rng.Uniform(1 << 20)};
  }
  if (rng.Bernoulli(0.5)) {
    state.snapshots.push_back(rng.Next() % 500);
    state.deferred_deletes.push_back({rng.Next() % 100, rng.Next() % 1000});
  }
  auto bytes = EncodeCheckpoint(state).ToBytes();

  CheckpointState out;
  ASSERT_TRUE(DecodeCheckpoint(Buffer::FromBytes(bytes), &out).ok());
  ASSERT_EQ(out.through_seq, state.through_seq);

  for (int trial = 0; trial < 200; trial++) {
    auto mutated = bytes;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    CheckpointState m;
    EXPECT_FALSE(DecodeCheckpoint(Buffer::FromBytes(mutated), &m).ok());
  }
}

TEST_P(CodecFuzz, RandomGarbageIsRejectedNotCrashed) {
  Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 50; trial++) {
    std::vector<uint8_t> garbage(kBlockSize);
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.Next());
    }
    JournalRecord jr;
    uint64_t len = 0;
    EXPECT_FALSE(
        DecodeJournalHeader(Buffer::FromBytes(garbage), &jr, &len).ok());
    DataObjectHeader oh;
    EXPECT_FALSE(DecodeDataObjectHeader(Buffer::FromBytes(garbage), &oh).ok());
    CheckpointState cs;
    EXPECT_FALSE(DecodeCheckpoint(Buffer::FromBytes(garbage), &cs).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- RunAllocator property test against a byte-level reference ---

class AllocatorProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocatorProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  constexpr uint64_t kBase = 1 << 20;
  constexpr uint64_t kSize = 1 << 16;
  RunAllocator alloc(kBase, kSize);
  std::vector<bool> ref(kSize, false);  // true = allocated
  std::vector<std::pair<uint64_t, uint64_t>> live;  // (offset, len)

  for (int step = 0; step < 2000; step++) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      const uint64_t len = (1 + rng.Uniform(16)) * 256;
      auto got = alloc.Allocate(len);
      // Reference: does a first-fit run of `len` exist?
      uint64_t run = 0;
      bool exists = false;
      for (uint64_t i = 0; i < kSize && !exists; i++) {
        run = ref[i] ? 0 : run + 1;
        if (run >= len) {
          exists = true;
        }
      }
      ASSERT_EQ(got.has_value(), exists) << "step " << step;
      if (got.has_value()) {
        ASSERT_GE(*got, kBase);
        ASSERT_LE(*got + len, kBase + kSize);
        for (uint64_t i = 0; i < len; i++) {
          ASSERT_FALSE(ref[*got - kBase + i]) << "double allocation";
          ref[*got - kBase + i] = true;
        }
        live.push_back({*got, len});
      }
    } else {
      const size_t idx = rng.Uniform(live.size());
      auto [off, len] = live[idx];
      live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
      alloc.Free(off, len);
      for (uint64_t i = 0; i < len; i++) {
        ref[off - kBase + i] = false;
      }
    }
    // Free-byte accounting must agree.
    uint64_t free_ref = 0;
    for (const bool b : ref) {
      free_ref += b ? 0 : 1;
    }
    ASSERT_EQ(alloc.free_bytes(), free_ref) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorProperty,
                         ::testing::Values(11, 22, 33));

// --- Buffer property test against a byte-vector reference ---

class BufferProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BufferProperty, RopeOperationsMatchFlatReference) {
  Rng rng(GetParam());
  Buffer buf;
  std::vector<uint8_t> ref;

  for (int step = 0; step < 300; step++) {
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      // Append random bytes.
      std::vector<uint8_t> bytes(1 + rng.Uniform(300));
      for (auto& b : bytes) {
        b = static_cast<uint8_t>(rng.Next());
      }
      buf.AppendBytes(bytes);
      ref.insert(ref.end(), bytes.begin(), bytes.end());
    } else if (op == 1) {
      const uint64_t n = 1 + rng.Uniform(500);
      buf.AppendZeros(n);
      ref.insert(ref.end(), n, 0);
    } else if (!ref.empty() && ref.size() < (1u << 20)) {
      // Re-append a slice of the existing buffer (exercises chunk sharing);
      // capped so the buffer cannot grow geometrically.
      const uint64_t off = rng.Uniform(ref.size());
      const uint64_t len =
          1 + rng.Uniform(std::min<uint64_t>(ref.size() - off, 4096));
      Buffer slice = buf.Slice(off, len);
      buf.Append(slice);
      ref.insert(ref.end(), ref.begin() + static_cast<ptrdiff_t>(off),
                 ref.begin() + static_cast<ptrdiff_t>(off + len));
    }
    ASSERT_EQ(buf.size(), ref.size());

    // Random window probes.
    if (!ref.empty()) {
      for (int probe = 0; probe < 3; probe++) {
        const uint64_t off = rng.Uniform(ref.size());
        const uint64_t len = 1 + rng.Uniform(ref.size() - off);
        std::vector<uint8_t> window(len);
        buf.CopyTo(off, window);
        ASSERT_EQ(0, std::memcmp(window.data(), ref.data() + off, len))
            << "step " << step;
      }
    }
  }
  EXPECT_EQ(buf.ToBytes(), ref);
  EXPECT_EQ(buf.Crc(), Crc32c(ref.data(), ref.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BufferProperty,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace lsvd
