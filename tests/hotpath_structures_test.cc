// Unit tests for the hot-path building blocks introduced by the CPU
// overhaul: InlineFn (small-buffer event callable) and SmallVector
// (inline-storage segment output).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/util/inline_fn.h"
#include "src/util/small_vector.h"

namespace lsvd {
namespace {

using Fn64 = InlineFn<64>;

TEST(InlineFn, SmallCaptureStaysInline) {
  int hits = 0;
  int* p = &hits;
  Fn64 fn([p] { (*p)++; });
  EXPECT_TRUE(fn.is_inline());
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, OversizedCaptureFallsBackToHeap) {
  char big[128] = {0};
  big[0] = 7;
  int out = 0;
  Fn64 fn([big, &out] { out = big[0]; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(out, 7);
}

TEST(InlineFn, MoveTransfersCallableAndOwnership) {
  auto token = std::make_shared<int>(41);
  std::weak_ptr<int> weak = token;
  int got = 0;
  Fn64 a([token, &got] { got = *token + 1; });
  token.reset();
  EXPECT_FALSE(weak.expired());

  Fn64 b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(got, 42);

  Fn64 c;
  c = std::move(b);
  c();
  EXPECT_EQ(got, 42);

  c = Fn64();  // destroying the callable releases its captures
  EXPECT_TRUE(weak.expired());
}

TEST(InlineFn, HeapCallableMoveAndDestroy) {
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> weak = token;
  char pad[100] = {0};
  Fn64 a([token, pad] { (void)pad; });
  token.reset();
  EXPECT_FALSE(a.is_inline());
  Fn64 b(std::move(a));
  EXPECT_FALSE(weak.expired());
  b = Fn64([] {});
  EXPECT_TRUE(weak.expired());
}

TEST(InlineFn, AcceptsStdFunction) {
  int hits = 0;
  std::function<void()> f = [&hits] { hits++; };
  Fn64 fn(f);
  EXPECT_TRUE(fn.is_inline());  // std::function is 32 bytes, fits in 64
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, MutableLambdaKeepsStateAcrossCalls) {
  std::vector<int> seen;
  Fn64 fn([n = 0, &seen]() mutable { seen.push_back(n++); });
  fn();
  fn();
  fn();
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(SmallVector, StaysInlineUpToN) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; i++) {
    v.push_back(i);
  }
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(SmallVector, ClearKeepsStorageWarm) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; i++) {
    v.push_back(i);
  }
  const size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);  // heap storage is retained for reuse
}

TEST(SmallVector, NonTrivialElements) {
  SmallVector<std::string, 2> v;
  v.push_back("alpha");
  v.emplace_back(100, 'x');
  v.push_back("omega");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "alpha");
  EXPECT_EQ(v[1], std::string(100, 'x'));
  EXPECT_EQ(v.back(), "omega");

  SmallVector<std::string, 2> copy(v);
  EXPECT_EQ(copy, v);
  SmallVector<std::string, 2> moved(std::move(v));
  EXPECT_EQ(moved, copy);

  copy = moved;
  EXPECT_EQ(copy.size(), 3u);
  moved = std::move(copy);
  EXPECT_EQ(moved.size(), 3u);
}

TEST(SmallVector, MoveFromInlineAndHeap) {
  SmallVector<std::unique_ptr<int>, 2> inline_v;
  inline_v.push_back(std::make_unique<int>(1));
  SmallVector<std::unique_ptr<int>, 2> a(std::move(inline_v));
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(*a[0], 1);

  SmallVector<std::unique_ptr<int>, 2> heap_v;
  for (int i = 0; i < 5; i++) {
    heap_v.push_back(std::make_unique<int>(i));
  }
  SmallVector<std::unique_ptr<int>, 2> b;
  b = std::move(heap_v);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(*b[4], 4);
}

// Regression: push_back(v[i]) must work when the push triggers growth, as
// it does for std::vector. The old Grow() destroyed (and, when heap-backed,
// freed) the source element before the new one was constructed.
TEST(SmallVector, PushBackOfOwnElementDuringGrowth) {
  // Inline -> heap transition: the argument lives in inline_ storage.
  SmallVector<std::string, 2> v;
  v.push_back(std::string(64, 'a'));  // long enough to defeat SSO
  v.push_back(std::string(64, 'b'));
  v.push_back(v[0]);  // grows; source is inline element 0
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], std::string(64, 'a'));
  EXPECT_EQ(v[0], std::string(64, 'a'));

  // Heap -> heap transition: the argument lives in the freed allocation.
  while (v.size() < v.capacity()) {
    v.push_back(std::string(64, 'c'));
  }
  const std::string want = v.back();
  v.push_back(v.back());  // grows; source is in the old heap block
  EXPECT_EQ(v.back(), want);

  // Same via emplace_back with a reference argument.
  while (v.size() < v.capacity()) {
    v.push_back(std::string(64, 'd'));
  }
  v.emplace_back(v[1]);
  EXPECT_EQ(v.back(), std::string(64, 'b'));
}

TEST(SmallVector, ReserveAvoidsLaterGrowth) {
  SmallVector<int, 2> v;
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  const int* data = v.begin();
  for (int i = 0; i < 100; i++) {
    v.push_back(i);
  }
  EXPECT_EQ(v.begin(), data);  // no reallocation happened
}

}  // namespace
}  // namespace lsvd
