// Unit tests for the journal record and backend object codecs.
#include <gtest/gtest.h>

#include "src/lsvd/journal.h"
#include "src/lsvd/object_format.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

TEST(JournalCodec, RoundTrip) {
  JournalRecord rec;
  rec.seq = 42;
  rec.batch_seq = 7;
  rec.extents = {{0, 4096}, {8 * kMiB, 8192}};
  rec.data = TestPattern(12288, 1);

  Buffer encoded = EncodeJournalRecord(rec);
  EXPECT_EQ(encoded.size(), kBlockSize + 12288);
  EXPECT_EQ(JournalRecordSize(rec), encoded.size());

  JournalRecord out;
  uint64_t data_len = 0;
  ASSERT_TRUE(
      DecodeJournalHeader(encoded.Slice(0, kBlockSize), &out, &data_len).ok());
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.batch_seq, 7u);
  EXPECT_EQ(data_len, 12288u);
  ASSERT_EQ(out.extents.size(), 2u);
  EXPECT_EQ(out.extents[0].vlba, 0u);
  EXPECT_EQ(out.extents[1].vlba, 8 * kMiB);
  EXPECT_EQ(out.extents[1].len, 8192u);
  EXPECT_TRUE(
      VerifyJournalData(out, encoded.Slice(kBlockSize, data_len)).ok());
}

TEST(JournalCodec, DetectsHeaderCorruption) {
  JournalRecord rec;
  rec.seq = 1;
  rec.extents = {{4096, 4096}};
  rec.data = TestPattern(4096, 2);
  auto bytes = EncodeJournalRecord(rec).ToBytes();
  bytes[100] ^= 0xFF;  // flip a bit inside the header

  JournalRecord out;
  uint64_t data_len = 0;
  Buffer header = Buffer::FromBytes(
      std::span<const uint8_t>(bytes.data(), kBlockSize));
  EXPECT_EQ(DecodeJournalHeader(header, &out, &data_len).code(),
            StatusCode::kCorruption);
}

TEST(JournalCodec, DetectsDataCorruption) {
  JournalRecord rec;
  rec.seq = 1;
  rec.extents = {{4096, 4096}};
  rec.data = TestPattern(4096, 3);
  Buffer encoded = EncodeJournalRecord(rec);

  JournalRecord out;
  uint64_t data_len = 0;
  ASSERT_TRUE(
      DecodeJournalHeader(encoded.Slice(0, kBlockSize), &out, &data_len).ok());
  Buffer wrong_data = TestPattern(4096, 4);
  EXPECT_EQ(VerifyJournalData(out, wrong_data).code(),
            StatusCode::kCorruption);
}

TEST(JournalCodec, GarbageIsRejected) {
  JournalRecord out;
  uint64_t data_len = 0;
  EXPECT_FALSE(
      DecodeJournalHeader(Buffer::Zeros(kBlockSize), &out, &data_len).ok());
  EXPECT_FALSE(
      DecodeJournalHeader(TestPattern(kBlockSize, 5), &out, &data_len).ok());
}

TEST(ObjectNaming, FormatAndParse) {
  EXPECT_EQ(DataObjectName("vol", 17), "vol.d.000000000017");
  EXPECT_EQ(CheckpointObjectName("vol", 3), "vol.c.000000000003");
  EXPECT_EQ(ParseDataObjectSeq("vol", "vol.d.000000000017"), 17u);
  EXPECT_EQ(ParseCheckpointSeq("vol", "vol.c.000000000003"), 3u);
  EXPECT_EQ(ParseDataObjectSeq("vol", "other.d.000000000017"), std::nullopt);
  EXPECT_EQ(ParseDataObjectSeq("vol", "vol.c.000000000017"), std::nullopt);
  EXPECT_EQ(ParseDataObjectSeq("vol", "vol.d.0000000017"), std::nullopt);
  // Lexicographic order matches numeric order (zero padding).
  EXPECT_LT(DataObjectName("vol", 99), DataObjectName("vol", 100));
}

TEST(ObjectCodec, DataObjectRoundTrip) {
  DataObjectHeader header;
  header.seq = 9;
  header.extents = {{0, 8192, 0, 0}, {kMiB, 4096, 0, 0}};
  Buffer data = TestPattern(12288, 6);
  Buffer object = EncodeDataObject(header, data);

  DataObjectHeader out;
  ASSERT_TRUE(DecodeDataObjectHeader(object, &out).ok());
  EXPECT_EQ(out.seq, 9u);
  EXPECT_EQ(out.data_offset, DataObjectHeaderSize(2));
  ASSERT_EQ(out.extents.size(), 2u);
  EXPECT_EQ(out.extents[1].vlba, kMiB);
  EXPECT_FALSE(out.extents[0].conditional());
  // Payload follows the header verbatim.
  EXPECT_EQ(object.Slice(out.data_offset, 12288), data);
}

TEST(ObjectCodec, ConditionalExtentsSurviveRoundTrip) {
  DataObjectHeader header;
  header.seq = 30;
  header.extents = {{4096, 4096, 12, 8192}};
  Buffer object = EncodeDataObject(header, TestPattern(4096, 7));
  DataObjectHeader out;
  ASSERT_TRUE(DecodeDataObjectHeader(object, &out).ok());
  ASSERT_EQ(out.extents.size(), 1u);
  EXPECT_TRUE(out.extents[0].conditional());
  EXPECT_EQ(out.extents[0].expected_seq, 12u);
  EXPECT_EQ(out.extents[0].expected_offset, 8192u);
}

TEST(ObjectCodec, HeaderCorruptionDetected) {
  DataObjectHeader header;
  header.seq = 1;
  header.extents = {{0, 4096, 0, 0}};
  auto bytes = EncodeDataObject(header, TestPattern(4096, 8)).ToBytes();
  bytes[40] ^= 1;
  DataObjectHeader out;
  EXPECT_EQ(DecodeDataObjectHeader(Buffer::FromBytes(bytes), &out).code(),
            StatusCode::kCorruption);
}

TEST(ObjectCodec, CheckpointRoundTrip) {
  CheckpointState state;
  state.through_seq = 55;
  state.next_seq = 60;
  state.object_map = {{0, 4096, ObjTarget{3, 4096}},
                      {kMiB, 8192, ObjTarget{55, 12288}}};
  state.object_info[3] = ObjectInfo{100000, 50000};
  state.object_info[55] = ObjectInfo{200000, 200000};
  state.deferred_deletes = {{10, 50}};
  state.snapshots = {20, 40};

  Buffer encoded = EncodeCheckpoint(state);
  CheckpointState out;
  ASSERT_TRUE(DecodeCheckpoint(encoded, &out).ok());
  EXPECT_EQ(out.through_seq, 55u);
  EXPECT_EQ(out.next_seq, 60u);
  ASSERT_EQ(out.object_map.size(), 2u);
  EXPECT_EQ(out.object_map[1].target.seq, 55u);
  EXPECT_EQ(out.object_info.at(3).live_bytes, 50000u);
  ASSERT_EQ(out.deferred_deletes.size(), 1u);
  EXPECT_EQ(out.deferred_deletes[0].gc_head, 50u);
  EXPECT_EQ(out.snapshots, (std::vector<uint64_t>{20, 40}));
}

TEST(ObjectCodec, CheckpointCorruptionDetected) {
  CheckpointState state;
  state.through_seq = 1;
  auto bytes = EncodeCheckpoint(state).ToBytes();
  bytes[8] ^= 0x80;
  CheckpointState out;
  EXPECT_EQ(DecodeCheckpoint(Buffer::FromBytes(bytes), &out).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace lsvd
