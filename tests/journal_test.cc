// Unit tests for the journal record and backend object codecs.
#include <gtest/gtest.h>

#include "src/lsvd/journal.h"
#include "src/lsvd/object_format.h"
#include "src/util/codec.h"
#include "src/util/crc32c.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

// Hand-builds a journal header with a *valid* CRC around arbitrary field
// values, so tests can exercise the semantic validation that runs after the
// integrity checks pass.
Buffer ForgeJournalHeader(uint64_t seq, uint32_t extent_count,
                          const std::vector<JournalExtent>& extents,
                          uint64_t data_len) {
  Encoder enc;
  enc.PutU32(0x4C53564A);  // journal magic
  enc.PutU64(seq);
  enc.PutU64(0);  // batch_seq
  enc.PutU32(extent_count);
  enc.PutU64(data_len);
  enc.PutU32(0);  // data CRC
  const size_t crc_pos = enc.size();
  enc.PutU32(0);  // header CRC backpatched below
  for (const auto& e : extents) {
    enc.PutU64(e.vlba);
    enc.PutU64(e.len);
  }
  enc.PadTo(kBlockSize);
  std::vector<uint8_t> header = enc.Take();
  const uint32_t crc = Crc32c(header.data(), header.size());
  for (int i = 0; i < 4; i++) {
    header[crc_pos + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  return Buffer::FromBytes(header);
}

TEST(JournalCodec, RoundTrip) {
  JournalRecord rec;
  rec.seq = 42;
  rec.batch_seq = 7;
  rec.extents = {{0, 4096}, {8 * kMiB, 8192}};
  rec.data = TestPattern(12288, 1);

  Buffer encoded = EncodeJournalRecord(rec);
  EXPECT_EQ(encoded.size(), kBlockSize + 12288);
  EXPECT_EQ(JournalRecordSize(rec), encoded.size());

  JournalRecord out;
  uint64_t data_len = 0;
  ASSERT_TRUE(
      DecodeJournalHeader(encoded.Slice(0, kBlockSize), &out, &data_len).ok());
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.batch_seq, 7u);
  EXPECT_EQ(data_len, 12288u);
  ASSERT_EQ(out.extents.size(), 2u);
  EXPECT_EQ(out.extents[0].vlba, 0u);
  EXPECT_EQ(out.extents[1].vlba, 8 * kMiB);
  EXPECT_EQ(out.extents[1].len, 8192u);
  EXPECT_TRUE(
      VerifyJournalData(out, encoded.Slice(kBlockSize, data_len)).ok());
}

TEST(JournalCodec, DetectsHeaderCorruption) {
  JournalRecord rec;
  rec.seq = 1;
  rec.extents = {{4096, 4096}};
  rec.data = TestPattern(4096, 2);
  auto bytes = EncodeJournalRecord(rec).ToBytes();
  bytes[100] ^= 0xFF;  // flip a bit inside the header

  JournalRecord out;
  uint64_t data_len = 0;
  Buffer header = Buffer::FromBytes(
      std::span<const uint8_t>(bytes.data(), kBlockSize));
  EXPECT_EQ(DecodeJournalHeader(header, &out, &data_len).code(),
            StatusCode::kCorruption);
}

TEST(JournalCodec, DetectsDataCorruption) {
  JournalRecord rec;
  rec.seq = 1;
  rec.extents = {{4096, 4096}};
  rec.data = TestPattern(4096, 3);
  Buffer encoded = EncodeJournalRecord(rec);

  JournalRecord out;
  uint64_t data_len = 0;
  ASSERT_TRUE(
      DecodeJournalHeader(encoded.Slice(0, kBlockSize), &out, &data_len).ok());
  Buffer wrong_data = TestPattern(4096, 4);
  EXPECT_EQ(VerifyJournalData(out, wrong_data).code(),
            StatusCode::kCorruption);
}

TEST(JournalCodec, GarbageIsRejected) {
  JournalRecord out;
  uint64_t data_len = 0;
  EXPECT_FALSE(
      DecodeJournalHeader(Buffer::Zeros(kBlockSize), &out, &data_len).ok());
  EXPECT_FALSE(
      DecodeJournalHeader(TestPattern(kBlockSize, 5), &out, &data_len).ok());
}

TEST(JournalCodec, RejectsExtentPastVolumeLimit) {
  JournalRecord rec;
  rec.seq = 3;
  rec.extents = {{60 * kMiB, 8192}};
  rec.data = TestPattern(8192, 9);
  Buffer header = EncodeJournalRecord(rec).Slice(0, kBlockSize);

  JournalRecord out;
  uint64_t data_len = 0;
  // Inside a 64 MiB volume: accepted (also with no limit configured).
  EXPECT_TRUE(DecodeJournalHeader(header, &out, &data_len, 64 * kMiB).ok());
  EXPECT_TRUE(DecodeJournalHeader(header, &out, &data_len).ok());
  // The same CRC-valid record must not replay into a smaller volume.
  EXPECT_EQ(DecodeJournalHeader(header, &out, &data_len, 32 * kMiB).code(),
            StatusCode::kCorruption);
  // Exactly at the end of the volume is still in range.
  EXPECT_TRUE(
      DecodeJournalHeader(header, &out, &data_len, 60 * kMiB + 8192).ok());
  EXPECT_EQ(
      DecodeJournalHeader(header, &out, &data_len, 60 * kMiB + 4096).code(),
      StatusCode::kCorruption);
}

TEST(JournalCodec, RejectsUnalignedVlba) {
  Buffer header = ForgeJournalHeader(1, 1, {{100, 4096}}, 4096);
  JournalRecord out;
  uint64_t data_len = 0;
  EXPECT_EQ(DecodeJournalHeader(header, &out, &data_len).code(),
            StatusCode::kCorruption);
}

TEST(JournalCodec, RejectsExtentRangeOverflow) {
  // vlba + len wraps uint64_t; without the guard the volume-limit check
  // would pass on the wrapped value.
  const uint64_t huge = UINT64_MAX - 4095;  // block-aligned
  Buffer header = ForgeJournalHeader(1, 1, {{2 * 4096, huge}}, huge);
  JournalRecord out;
  uint64_t data_len = 0;
  EXPECT_EQ(DecodeJournalHeader(header, &out, &data_len, 64 * kMiB).code(),
            StatusCode::kCorruption);
}

TEST(JournalCodec, RejectsExtentLengthSumOverflow) {
  // Each extent is individually fine; the sum wraps uint64_t and would
  // otherwise masquerade as a small payload.
  const uint64_t half = 1ULL << 63;  // block-aligned
  Buffer header =
      ForgeJournalHeader(1, 2, {{0, half}, {0, half}}, /*data_len=*/0);
  JournalRecord out;
  uint64_t data_len = 0;
  EXPECT_EQ(DecodeJournalHeader(header, &out, &data_len).code(),
            StatusCode::kCorruption);
}

TEST(JournalCodec, RejectsTruncatedExtentArray) {
  // Header claims 5 extents but encodes only 2; the missing entries decode
  // as zero padding (len 0), which must not pass.
  Buffer header =
      ForgeJournalHeader(1, 5, {{0, 4096}, {8192, 4096}}, 5 * 4096);
  JournalRecord out;
  uint64_t data_len = 0;
  EXPECT_EQ(DecodeJournalHeader(header, &out, &data_len).code(),
            StatusCode::kCorruption);
}

TEST(ObjectNaming, FormatAndParse) {
  EXPECT_EQ(DataObjectName("vol", 17), "vol.d.000000000017");
  EXPECT_EQ(CheckpointObjectName("vol", 3), "vol.c.000000000003");
  EXPECT_EQ(ParseDataObjectSeq("vol", "vol.d.000000000017"), 17u);
  EXPECT_EQ(ParseCheckpointSeq("vol", "vol.c.000000000003"), 3u);
  EXPECT_EQ(ParseDataObjectSeq("vol", "other.d.000000000017"), std::nullopt);
  EXPECT_EQ(ParseDataObjectSeq("vol", "vol.c.000000000017"), std::nullopt);
  EXPECT_EQ(ParseDataObjectSeq("vol", "vol.d.0000000017"), std::nullopt);
  // Lexicographic order matches numeric order (zero padding).
  EXPECT_LT(DataObjectName("vol", 99), DataObjectName("vol", 100));
}

TEST(ObjectCodec, DataObjectRoundTrip) {
  DataObjectHeader header;
  header.seq = 9;
  header.extents = {{0, 8192, 0, 0}, {kMiB, 4096, 0, 0}};
  Buffer data = TestPattern(12288, 6);
  Buffer object = EncodeDataObject(header, data);

  DataObjectHeader out;
  ASSERT_TRUE(DecodeDataObjectHeader(object, &out).ok());
  EXPECT_EQ(out.seq, 9u);
  EXPECT_EQ(out.data_offset, DataObjectHeaderSize(2));
  ASSERT_EQ(out.extents.size(), 2u);
  EXPECT_EQ(out.extents[1].vlba, kMiB);
  EXPECT_FALSE(out.extents[0].conditional());
  // Payload follows the header verbatim.
  EXPECT_EQ(object.Slice(out.data_offset, 12288), data);
}

TEST(ObjectCodec, ConditionalExtentsSurviveRoundTrip) {
  DataObjectHeader header;
  header.seq = 30;
  header.extents = {{4096, 4096, 12, 8192}};
  Buffer object = EncodeDataObject(header, TestPattern(4096, 7));
  DataObjectHeader out;
  ASSERT_TRUE(DecodeDataObjectHeader(object, &out).ok());
  ASSERT_EQ(out.extents.size(), 1u);
  EXPECT_TRUE(out.extents[0].conditional());
  EXPECT_EQ(out.extents[0].expected_seq, 12u);
  EXPECT_EQ(out.extents[0].expected_offset, 8192u);
}

TEST(ObjectCodec, HeaderCorruptionDetected) {
  DataObjectHeader header;
  header.seq = 1;
  header.extents = {{0, 4096, 0, 0}};
  auto bytes = EncodeDataObject(header, TestPattern(4096, 8)).ToBytes();
  bytes[40] ^= 1;
  DataObjectHeader out;
  EXPECT_EQ(DecodeDataObjectHeader(Buffer::FromBytes(bytes), &out).code(),
            StatusCode::kCorruption);
}

TEST(ObjectCodec, CheckpointRoundTrip) {
  CheckpointState state;
  state.through_seq = 55;
  state.next_seq = 60;
  state.object_map = {{0, 4096, ObjTarget{3, 4096}},
                      {kMiB, 8192, ObjTarget{55, 12288}}};
  state.object_info[3] = ObjectInfo{100000, 50000};
  state.object_info[55] = ObjectInfo{200000, 200000};
  state.deferred_deletes = {{10, 50}};
  state.snapshots = {20, 40};

  Buffer encoded = EncodeCheckpoint(state);
  CheckpointState out;
  ASSERT_TRUE(DecodeCheckpoint(encoded, &out).ok());
  EXPECT_EQ(out.through_seq, 55u);
  EXPECT_EQ(out.next_seq, 60u);
  ASSERT_EQ(out.object_map.size(), 2u);
  EXPECT_EQ(out.object_map[1].target.seq, 55u);
  EXPECT_EQ(out.object_info.at(3).live_bytes, 50000u);
  ASSERT_EQ(out.deferred_deletes.size(), 1u);
  EXPECT_EQ(out.deferred_deletes[0].gc_head, 50u);
  EXPECT_EQ(out.snapshots, (std::vector<uint64_t>{20, 40}));
}

TEST(ObjectCodec, CheckpointCorruptionDetected) {
  CheckpointState state;
  state.through_seq = 1;
  auto bytes = EncodeCheckpoint(state).ToBytes();
  bytes[8] ^= 0x80;
  CheckpointState out;
  EXPECT_EQ(DecodeCheckpoint(Buffer::FromBytes(bytes), &out).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace lsvd
