// Multi-volume hosting: several LsvdDisks sharing one ClientHost (SSD,
// CPU queues, backend link), with explicit SSD region allocation, per-volume
// metric prefixes, per-volume QoS admission, and a host-wide PUT window.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/lsvd/lsvd_disk.h"
#include "src/lsvd/qos.h"
#include "src/lsvd/ssd_region_allocator.h"
#include "src/workload/arrival.h"
#include "src/workload/driver.h"
#include "src/workload/fio_gen.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

// --- SSD region allocator ---

TEST(SsdRegionAllocatorTest, FirstFitAllocAndFreeCoalesces) {
  SsdRegionAllocator alloc(0, 16 * kMiB);
  auto a = alloc.Allocate(4 * kMiB, "a");
  auto b = alloc.Allocate(4 * kMiB, "b");
  auto c = alloc.Allocate(4 * kMiB, "c");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 4 * kMiB);
  EXPECT_EQ(*c, 8 * kMiB);
  EXPECT_EQ(alloc.allocated_bytes(), 12 * kMiB);
  EXPECT_EQ(alloc.region_count(), 3u);

  // Free the middle region: a later fitting request reuses the hole.
  ASSERT_TRUE(alloc.Free(*b).ok());
  auto d = alloc.Allocate(2 * kMiB, "d");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 4 * kMiB);

  // Freeing neighbors coalesces back into one run large enough for a
  // request that no single fragment could satisfy.
  ASSERT_TRUE(alloc.Free(*d).ok());
  ASSERT_TRUE(alloc.Free(*a).ok());
  auto e = alloc.Allocate(8 * kMiB, "e");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 0u);
}

TEST(SsdRegionAllocatorTest, RejectsBadRequests) {
  SsdRegionAllocator alloc(0, 8 * kMiB);
  EXPECT_EQ(alloc.Allocate(0, "x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(alloc.Allocate(4096 + 1, "x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(alloc.Allocate(16 * kMiB, "x").status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(alloc.Free(123).code(), StatusCode::kInvalidArgument);
}

TEST(SsdRegionAllocatorTest, RegionsCarryOwnerLabels) {
  SsdRegionAllocator alloc(0, 8 * kMiB);
  ASSERT_TRUE(alloc.Allocate(kMiB, "volA.write_cache").ok());
  ASSERT_TRUE(alloc.Allocate(kMiB, "volA.read_cache").ok());
  const auto regions = alloc.Regions();
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].owner, "volA.write_cache");
  EXPECT_EQ(regions[1].owner, "volA.read_cache");
}

// --- token bucket ---

TEST(TokenBucketTest, RefillsOnSimTime) {
  TokenBucket bucket(1000.0, 10.0);  // 1000 tokens/s, burst 10
  EXPECT_TRUE(bucket.Has(10.0, 0));
  bucket.Take(10.0);
  EXPECT_FALSE(bucket.Has(1.0, 0));
  // 5 tokens accrue in 5 ms.
  EXPECT_TRUE(bucket.Has(5.0, 5 * kMillisecond));
  EXPECT_FALSE(bucket.Has(6.0, 5 * kMillisecond));
  // Eta for one more token from empty is 1 ms.
  bucket.Take(5.0);
  EXPECT_EQ(bucket.Eta(1.0, 5 * kMillisecond), kMillisecond);
}

TEST(TokenBucketTest, EtaNeverReturnsZeroForARealDeficit) {
  // Regression: a deficit smaller than what one nanosecond of refill covers
  // used to truncate Eta to 0 ns, so the admission timer re-armed at the
  // current timestamp and the pump spun without ever accruing a token.
  TokenBucket bucket(1000.0, 10.0);  // 1 token per ms
  bucket.Take(10.0);                 // empty, no refill yet at t=0
  // 1e-7 tokens at 1000/s refill in 0.1 ns — truncates to 0 unclamped.
  const Nanos eta = bucket.Eta(1e-7, 0);
  EXPECT_GE(eta, 1);
  // A full-token deficit still reports its true refill time.
  TokenBucket slow(1000.0, 10.0);
  slow.Take(10.0);
  EXPECT_EQ(slow.Eta(1.0, 0), kMillisecond);
}

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket bucket(0.0, 0.0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_TRUE(bucket.Has(1e9, 0));
  EXPECT_EQ(bucket.Eta(1e9, 0), 0);
}

// --- multi-volume integration ---

class MultiVolumeTest : public ::testing::Test {
 protected:
  MultiVolumeTest() : host_(&sim_, TestWorld::InstantHostConfig(), &metrics_),
                      store_(&sim_) {}

  static LsvdConfig VolumeConfig(const std::string& name) {
    LsvdConfig config = TestWorld::SmallVolumeConfig();
    config.volume_name = name;
    config.SetPerVolumeMetricPrefixes();
    return config;
  }

  std::unique_ptr<LsvdDisk> CreateVolume(const LsvdConfig& config) {
    auto disk = std::make_unique<LsvdDisk>(&host_, &store_, config, &metrics_);
    EXPECT_TRUE(OpenSync(&sim_, disk.get(), &LsvdDisk::Create).ok());
    return disk;
  }

  Simulator sim_;
  MetricsRegistry metrics_;
  ClientHost host_;
  MemObjectStore store_;
};

TEST_F(MultiVolumeTest, VolumesShareOneSsdWithoutInterference) {
  auto a = CreateVolume(VolumeConfig("volA"));
  auto b = CreateVolume(VolumeConfig("volB"));
  EXPECT_EQ(host_.volume_count(), 2u);
  // Four cache regions (write + read per volume) carved from one SSD.
  EXPECT_EQ(host_.ssd_regions()->region_count(), 4u);

  // Same LBA, different contents: each volume sees only its own data.
  Buffer da = TestPattern(64 * kKiB, 1);
  Buffer db = TestPattern(64 * kKiB, 2);
  ASSERT_TRUE(WriteSync(&sim_, a.get(), kMiB, da).ok());
  ASSERT_TRUE(WriteSync(&sim_, b.get(), kMiB, db).ok());
  auto ra = ReadSync(&sim_, a.get(), kMiB, 64 * kKiB);
  auto rb = ReadSync(&sim_, b.get(), kMiB, 64 * kKiB);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(*ra, da);
  EXPECT_EQ(*rb, db);

  // Through the backend too: drain both, then the object namespaces stay
  // disjoint in the shared object store.
  ASSERT_TRUE(DrainSync(&sim_, a.get()).ok());
  ASSERT_TRUE(DrainSync(&sim_, b.get()).ok());
  EXPECT_FALSE(store_.List(DataObjectPrefix("volA")).empty());
  EXPECT_FALSE(store_.List(DataObjectPrefix("volB")).empty());
}

TEST_F(MultiVolumeTest, PerVolumeMetricPrefixesAndHostAggregates) {
  auto a = CreateVolume(VolumeConfig("volA"));
  auto b = CreateVolume(VolumeConfig("volB"));
  ASSERT_TRUE(WriteSync(&sim_, a.get(), 0, TestPattern(8 * kKiB, 1)).ok());
  ASSERT_TRUE(WriteSync(&sim_, b.get(), 0, TestPattern(8 * kKiB, 2)).ok());
  ASSERT_TRUE(WriteSync(&sim_, b.get(), 8 * kKiB,
                        TestPattern(8 * kKiB, 3)).ok());

  const auto snap = metrics_.Snapshot();
  EXPECT_EQ(snap.CounterValue("lsvd.volA.writes"), 1u);
  EXPECT_EQ(snap.CounterValue("lsvd.volB.writes"), 2u);
  // Component metrics are namespaced per volume as well.
  EXPECT_NE(snap.Find("lsvd.volA.write_cache.records"), nullptr);
  EXPECT_NE(snap.Find("lsvd.volB.write_cache.records"), nullptr);
  // Host-level aggregates sum over attached volumes.
  EXPECT_EQ(snap.Find("host.volumes")->value, 2.0);
  EXPECT_EQ(snap.Find("host.writes")->value, 3.0);
  EXPECT_EQ(snap.Find("host.write_bytes")->value,
            static_cast<double>(3 * 8 * kKiB));
  EXPECT_GT(snap.Find("host.ssd.allocated_bytes")->value, 0.0);

  // Detaching a volume drops it from the aggregates.
  b.reset();
  EXPECT_EQ(metrics_.Snapshot().Find("host.volumes")->value, 1.0);
  EXPECT_EQ(metrics_.Snapshot().Find("host.writes")->value, 1.0);
}

TEST_F(MultiVolumeTest, CrashReopenOneVolumeWhileOtherStaysLive) {
  auto a = CreateVolume(VolumeConfig("volA"));
  auto b = CreateVolume(VolumeConfig("volB"));
  Buffer da = TestPattern(32 * kKiB, 4);
  Buffer db = TestPattern(32 * kKiB, 5);
  ASSERT_TRUE(WriteSync(&sim_, a.get(), 0, da).ok());
  ASSERT_TRUE(WriteSync(&sim_, b.get(), 0, db).ok());

  // Volume A's client process dies; its SSD regions survive (the allocator
  // does not free them on destruction) and a fresh disk attaches to them.
  const DiskRegions regions = a->regions();
  a->Kill();
  a.reset();
  EXPECT_EQ(host_.volume_count(), 1u);
  EXPECT_EQ(host_.ssd_regions()->region_count(), 4u);

  auto a2 = std::make_unique<LsvdDisk>(&host_, &store_, VolumeConfig("volA"),
                                       regions, &metrics_);
  ASSERT_TRUE(OpenSync(&sim_, a2.get(), &LsvdDisk::OpenAfterCrash).ok());
  auto ra = ReadSync(&sim_, a2.get(), 0, 32 * kKiB);
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(*ra, da);
  // Volume B never noticed.
  auto rb = ReadSync(&sim_, b.get(), 0, 32 * kKiB);
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(*rb, db);
}

TEST_F(MultiVolumeTest, QosIopsCapThrottlesWrites) {
  LsvdConfig config = VolumeConfig("capped");
  config.qos.iops = 1000;
  config.qos.burst_seconds = 0.001;  // burst of 1: every op pays the rate
  auto disk = CreateVolume(config);

  const Nanos start = sim_.now();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(WriteSync(&sim_, disk.get(),
                          static_cast<uint64_t>(i) * 4096,
                          TestPattern(4096, 10 + i))
                    .ok());
  }
  // 100 ops at 1000 IOPS with burst 1 need >= ~99 ms of simulated time
  // (instant SSD: without the throttle this completes at t=start).
  EXPECT_GE(sim_.now() - start, 90 * kMillisecond);

  const auto snap = metrics_.Snapshot();
  EXPECT_GT(snap.CounterValue("lsvd.capped.qos.throttled"), 0u);
  EXPECT_GT(snap.Percentile("lsvd.capped.qos.wait_us", 0.99), 0.0);
  // Throttle wait is part of the client-visible ack latency.
  EXPECT_GE(snap.Percentile("lsvd.capped.write.ack_us", 0.99), 900.0);
}

TEST_F(MultiVolumeTest, QosBandwidthCapThrottlesByBytes) {
  LsvdConfig config = VolumeConfig("bwcapped");
  config.qos.bytes_per_sec = 10 * kMiB;  // 10 MiB/s
  config.qos.burst_seconds = 0.001;
  auto disk = CreateVolume(config);

  const Nanos start = sim_.now();
  // 5 MiB of writes at 10 MiB/s: at least ~0.4 s of simulated time.
  for (int i = 0; i < 80; i++) {
    ASSERT_TRUE(WriteSync(&sim_, disk.get(),
                          static_cast<uint64_t>(i) * 64 * kKiB,
                          TestPattern(64 * kKiB, 20 + i))
                    .ok());
  }
  EXPECT_GE(sim_.now() - start, 400 * kMillisecond);
}

TEST_F(MultiVolumeTest, FairShareVolumesDrawFromHostPool) {
  // Rebuild the host with a bounded fair-share pool.
  ClientHostConfig hc = TestWorld::InstantHostConfig();
  hc.fair_share_iops = 1000;
  hc.fair_share_burst_seconds = 0.001;
  MetricsRegistry metrics;
  ClientHost host(&sim_, hc, &metrics);
  MemObjectStore store(&sim_);

  LsvdConfig config = VolumeConfig("shared");
  config.qos.fair_share = true;  // no per-volume cap, pool-limited only
  auto disk = std::make_unique<LsvdDisk>(&host, &store, config, &metrics);
  ASSERT_TRUE(OpenSync(&sim_, disk.get(), &LsvdDisk::Create).ok());

  const Nanos start = sim_.now();
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(WriteSync(&sim_, disk.get(),
                          static_cast<uint64_t>(i) * 4096,
                          TestPattern(4096, 30 + i))
                    .ok());
  }
  EXPECT_GE(sim_.now() - start, 40 * kMillisecond);
}

TEST_F(MultiVolumeTest, HostPutWindowSerializesBackendPutsAcrossVolumes) {
  // Window of one outstanding PUT host-wide: both volumes still drain
  // completely (slots are granted round-robin, nothing starves).
  ClientHostConfig hc = TestWorld::InstantHostConfig();
  hc.host_put_window = 1;
  MetricsRegistry metrics;
  ClientHost host(&sim_, hc, &metrics);
  MemObjectStore store(&sim_);

  auto make = [&](const std::string& name) {
    auto d = std::make_unique<LsvdDisk>(&host, &store, VolumeConfig(name),
                                        &metrics);
    EXPECT_TRUE(OpenSync(&sim_, d.get(), &LsvdDisk::Create).ok());
    return d;
  };
  auto a = make("volA");
  auto b = make("volB");

  // Several batches per volume, interleaved.
  for (int i = 0; i < 4; i++) {
    ASSERT_TRUE(WriteSync(&sim_, a.get(), static_cast<uint64_t>(i) * 2 * kMiB,
                          TestPattern(kMiB, 40 + i))
                    .ok());
    ASSERT_TRUE(WriteSync(&sim_, b.get(), static_cast<uint64_t>(i) * 2 * kMiB,
                          TestPattern(kMiB, 50 + i))
                    .ok());
  }
  ASSERT_TRUE(DrainSync(&sim_, a.get()).ok());
  ASSERT_TRUE(DrainSync(&sim_, b.get()).ok());
  EXPECT_EQ(host.put_scheduler()->held(), 0u);
  EXPECT_GE(store.List(DataObjectPrefix("volA")).size(), 4u);
  EXPECT_GE(store.List(DataObjectPrefix("volB")).size(), 4u);

  // Everything is still readable from the backend path.
  auto r = ReadSync(&sim_, b.get(), 0, kMiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(kMiB, 50));
}

// --- QoS × open-loop bursts (fig17's claim under DESIGN.md §12 arrivals) ---

struct BurstScenario {
  double victim_p999_us = 0;
  double noisy_mbps = 0;
};

// fig17's noisy-neighbor setup at test scale, but driven open-loop: a
// latency-sensitive tenant issues 4 KiB writes at a constant Poisson rate
// while a bursty tenant slams 256 KiB writes in 8x square-wave bursts.
// Token-bucket admission (PR 3) must compose with open-loop arrivals: the
// throttle's retry waits are what keep the victim's tail flat through the
// bursts, so a zero-duration Eta or a queueing bug here blows up p99.9.
BurstScenario RunBurstScenario(bool with_noisy, bool qos_on) {
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 8 * kGiB;
  hc.ssd = SsdParams::P3700();  // realistic latency so contention is real
  if (qos_on) {
    hc.host_put_window = 8;
  }
  MetricsRegistry metrics;
  ClientHost host(&sim, hc, &metrics);
  MemObjectStore store(&sim);

  LsvdConfig vconfig = TestWorld::SmallVolumeConfig();
  vconfig.volume_name = "victim";
  vconfig.SetPerVolumeMetricPrefixes();
  LsvdDisk victim(&host, &store, vconfig, &metrics);
  EXPECT_TRUE(OpenSync(&sim, &victim, &LsvdDisk::Create).ok());

  std::unique_ptr<LsvdDisk> noisy;
  if (with_noisy) {
    LsvdConfig nconfig = TestWorld::SmallVolumeConfig();
    nconfig.volume_name = "noisy";
    nconfig.SetPerVolumeMetricPrefixes();
    if (qos_on) {
      nconfig.qos.bytes_per_sec = 50 * 1000 * 1000;  // 50 MB/s cap
      nconfig.qos.burst_seconds = 0.005;
    }
    noisy = std::make_unique<LsvdDisk>(&host, &store, nconfig, &metrics);
    EXPECT_TRUE(OpenSync(&sim, noisy.get(), &LsvdDisk::Create).ok());
  }

  const Nanos deadline = sim.now() + 50 * kMillisecond;

  FioConfig vfio;
  vfio.pattern = FioConfig::Pattern::kRandWrite;
  vfio.block_size = 4 * kKiB;
  vfio.volume_size = victim.size();
  Driver vdrv(&sim, &victim, MakeFioGen(vfio), /*queue_depth=*/4, deadline,
              &metrics, "victim_drv");
  ArrivalConfig varr;
  varr.profile = ArrivalConfig::Profile::kConstant;
  varr.rate = 4000.0;
  varr.seed = 3;
  vdrv.EnableOpenLoop(varr, /*max_outstanding=*/16);

  std::unique_ptr<Driver> ndrv;
  if (with_noisy) {
    FioConfig nfio;
    nfio.pattern = FioConfig::Pattern::kSeqWrite;
    nfio.block_size = 256 * kKiB;
    nfio.volume_size = noisy->size();
    nfio.seed = 2;
    ndrv = std::make_unique<Driver>(&sim, noisy.get(), MakeFioGen(nfio),
                                    /*queue_depth=*/16, deadline, &metrics,
                                    "noisy_drv");
    ArrivalConfig narr;
    narr.profile = ArrivalConfig::Profile::kBurst;
    narr.rate = 1000.0;  // 256 MB/s mean offered, 2 GB/s during bursts
    narr.period = 10 * kMillisecond;
    narr.burst_duration = 2 * kMillisecond;
    narr.multiplier = 8.0;
    narr.seed = 5;
    ndrv->EnableOpenLoop(narr, /*max_outstanding=*/64);
  }

  bool vdone = false;
  bool ndone = !with_noisy;
  vdrv.Run([&] { vdone = true; });
  if (ndrv != nullptr) {
    ndrv->Run([&] { ndone = true; });
  }
  sim.Run();
  EXPECT_TRUE(vdone && ndone);

  BurstScenario out;
  out.victim_p999_us =
      metrics.Snapshot().Percentile("victim_drv.write_us", 0.999);
  if (ndrv != nullptr) {
    out.noisy_mbps = ndrv->stats().WriteThroughputBps() / 1e6;
  }
  return out;
}

TEST_F(MultiVolumeTest, QosCapHoldsVictimTailUnderOpenLoopBursts) {
  const BurstScenario solo = RunBurstScenario(/*with_noisy=*/false,
                                              /*qos_on=*/false);
  const BurstScenario unthrottled = RunBurstScenario(/*with_noisy=*/true,
                                                     /*qos_on=*/false);
  const BurstScenario capped = RunBurstScenario(/*with_noisy=*/true,
                                                /*qos_on=*/true);
  ASSERT_GT(solo.victim_p999_us, 0.0);

  // The bursts are the problem: uncapped, the noisy tenant's 8x write
  // bursts drag the victim's p99.9 far above solo.
  EXPECT_GT(unthrottled.victim_p999_us, 3.0 * solo.victim_p999_us);
  // The token bucket composes with open-loop admission: capped, the
  // victim's tail comes back to within shouting distance of solo...
  EXPECT_LT(capped.victim_p999_us, 3.0 * solo.victim_p999_us);
  EXPECT_LT(capped.victim_p999_us, unthrottled.victim_p999_us / 2.0);
  // ...while the noisy tenant is actually held to its cap (50 MB/s plus
  // the 5 ms burst allowance), not starved outright.
  EXPECT_LT(capped.noisy_mbps, 60.0);
  EXPECT_GT(capped.noisy_mbps, 10.0);
}

TEST_F(MultiVolumeTest, DetachedVolumeReturnsItsRegions) {
  auto a = CreateVolume(VolumeConfig("volA"));
  const uint64_t allocated = host_.ssd_regions()->allocated_bytes();
  const DiskRegions regions = a->regions();
  a.reset();
  // Destruction does not free (crash-reopen contract)...
  EXPECT_EQ(host_.ssd_regions()->allocated_bytes(), allocated);
  // ...an owner that is truly done frees explicitly.
  ASSERT_TRUE(host_.ssd_regions()->Free(regions.write_cache_base).ok());
  ASSERT_TRUE(host_.ssd_regions()->Free(regions.read_cache_base).ok());
  EXPECT_EQ(host_.ssd_regions()->allocated_bytes(), 0u);
  EXPECT_EQ(host_.ssd_regions()->free_bytes(),
            host_.ssd_regions()->total_bytes());
}

}  // namespace
}  // namespace lsvd
