// Unit tests for the discrete-event engine, service queues, disk models, and
// the backend cluster.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/disk_model.h"
#include "src/sim/net_link.h"
#include "src/sim/server_queue.h"
#include "src/sim/simulator.h"

namespace lsvd {
namespace {

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.At(30, [&] { order.push_back(3); });
  sim.At(10, [&] { order.push_back(1); });
  sim.At(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    sim.At(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&]() {
    fired++;
    if (fired < 10) {
      sim.After(5, chain);
    }
  };
  sim.After(5, chain);
  sim.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.now(), 50);
}

TEST(Simulator, RunUntilAdvancesClockAndStops) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { fired++; });
  sim.At(100, [&] { fired++; });
  const uint64_t n = sim.RunUntil(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(ServerQueue, SingleServerSerializes) {
  Simulator sim;
  ServerQueue q(&sim, 1);
  std::vector<Nanos> completions;
  for (int i = 0; i < 3; i++) {
    q.Submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  EXPECT_EQ(completions, (std::vector<Nanos>{100, 200, 300}));
  EXPECT_EQ(q.busy_time(), 300);
  EXPECT_EQ(q.completed_ops(), 3u);
}

TEST(ServerQueue, MultipleServersOverlap) {
  Simulator sim;
  ServerQueue q(&sim, 4);
  std::vector<Nanos> completions;
  for (int i = 0; i < 8; i++) {
    q.Submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.Run();
  // First 4 at t=100, next 4 at t=200.
  EXPECT_EQ(sim.now(), 200);
  EXPECT_EQ(completions.size(), 8u);
  EXPECT_EQ(completions[3], 100);
  EXPECT_EQ(completions[4], 200);
}

TEST(ServerQueue, UtilizationHelper) {
  EXPECT_DOUBLE_EQ(ServerQueue::Utilization(500, 1000, 1), 0.5);
  EXPECT_DOUBLE_EQ(ServerQueue::Utilization(500, 1000, 2), 0.25);
  EXPECT_DOUBLE_EQ(ServerQueue::Utilization(1, 0, 1), 0.0);
}

TEST(HddModel, NearAccessIsCheaperThanFar) {
  Simulator sim;
  HddParams params;
  HddModel disk(&sim, params);

  Nanos near_done = 0;
  Nanos far_done = 0;
  // First op seeks from 0 (head) to half the disk => far.
  disk.Submit(true, params.capacity / 2, 4096, [&] { far_done = sim.now(); });
  sim.Run();
  far_done = sim.now();
  // Second op lands right after the head => near.
  const Nanos t0 = sim.now();
  disk.Submit(true, params.capacity / 2 + 4096, 4096,
              [&] { near_done = sim.now(); });
  sim.Run();
  EXPECT_GT(far_done, params.seek_base);
  EXPECT_LT(near_done - t0, params.near_access + kMillisecond);
  EXPECT_LT(near_done - t0, far_done);
}

TEST(HddModel, SeekCostGrowsWithDistance) {
  Simulator sim;
  HddParams params;
  HddModel near_disk(&sim, params);
  HddModel far_disk(&sim, params);
  Nanos short_seek = 0;
  Nanos long_seek = 0;
  near_disk.Submit(true, kGiB, 4096, [&] { short_seek = sim.now(); });
  sim.Run();
  const Nanos t0 = sim.now();
  far_disk.Submit(true, params.capacity - 4096, 4096,
                  [&] { long_seek = sim.now() - t0; });
  sim.Run();
  EXPECT_LT(short_seek, long_seek);
  // A full-stroke random write lands near the paper's ~370 IOPS rating.
  EXPECT_GT(long_seek, 3 * kMillisecond);
  EXPECT_LT(long_seek, 8 * kMillisecond);
}

TEST(HddModel, ElevatorReordersForShortSeeks) {
  Simulator sim;
  HddParams params;
  HddModel disk(&sim, params);
  std::vector<int> completion_order;
  // Head at 0. Queue a far op, then (while busy) a near op and another far
  // op. After the first far op finishes at 10 GiB, the elevator should pick
  // the op closest to 10 GiB next.
  disk.Submit(true, 10 * kGiB, 4096, [&] { completion_order.push_back(0); });
  disk.Submit(true, 40 * kGiB, 4096, [&] { completion_order.push_back(1); });
  disk.Submit(true, 10 * kGiB + 8192, 4096,
              [&] { completion_order.push_back(2); });
  sim.Run();
  EXPECT_EQ(completion_order, (std::vector<int>{0, 2, 1}));
}

TEST(HddModel, StatsAccumulate) {
  Simulator sim;
  HddModel disk(&sim, HddParams{});
  disk.Submit(true, 0, 8192, [] {});
  disk.Submit(false, kGiB, 4096, [] {});
  sim.Run();
  EXPECT_EQ(disk.stats().write_ops, 1u);
  EXPECT_EQ(disk.stats().write_bytes, 8192u);
  EXPECT_EQ(disk.stats().read_ops, 1u);
  EXPECT_GT(disk.stats().busy, 0);
}

TEST(BackendSsdModel, IopsLimited) {
  Simulator sim;
  BackendSsdParams params;  // 4 channels x 400us writes => 10K IOPS
  BackendSsdModel disk(&sim, params);
  int done = 0;
  for (int i = 0; i < 1000; i++) {
    disk.Submit(true, static_cast<uint64_t>(i) * 4096, 4096,
                [&] { done++; });
  }
  sim.Run();
  EXPECT_EQ(done, 1000);
  // 1000 ops / (4 channels / 400us) = 100ms.
  EXPECT_NEAR(ToSeconds(sim.now()), 0.1, 0.01);
}

TEST(BackendCluster, PlacementIsDeterministicAndDistinct) {
  Simulator sim;
  BackendCluster cluster(&sim, ClusterConfig::HddPool());
  for (uint64_t h = 0; h < 100; h++) {
    const int d0 = cluster.PickDisk(h, 0);
    const int d1 = cluster.PickDisk(h, 1);
    const int d2 = cluster.PickDisk(h, 2);
    EXPECT_EQ(d0, cluster.PickDisk(h, 0));
    EXPECT_NE(d0, d1);
    EXPECT_NE(d1, d2);
    EXPECT_NE(d0, d2);
    EXPECT_GE(d0, 0);
    EXPECT_LT(d0, cluster.num_disks());
  }
}

TEST(BackendCluster, WalAppendsAreSequentialPerDisk) {
  Simulator sim;
  BackendCluster cluster(&sim, ClusterConfig::HddPool());
  const uint64_t o1 = cluster.WalAppend(3, 4096, [] {});
  const uint64_t o2 = cluster.WalAppend(3, 4096, [] {});
  const uint64_t other = cluster.WalAppend(4, 4096, [] {});
  sim.Run();
  EXPECT_EQ(o2, o1 + 4096);
  EXPECT_EQ(other, 0u);
}

TEST(BackendCluster, UtilizationWindow) {
  Simulator sim;
  ClusterConfig config = ClusterConfig::HddPool();
  config.num_disks = 2;
  BackendCluster cluster(&sim, config);
  const Nanos busy0 = cluster.TotalBusy();
  const Nanos t0 = sim.now();
  cluster.Write(0, kGiB, 4096, [] {});
  sim.Run();
  const double util = cluster.MeanUtilization(busy0, t0, sim.now());
  // One disk busy the whole window, the other idle => ~50%.
  EXPECT_NEAR(util, 0.5, 0.05);
}

TEST(BackendCluster, WriteSizeHistogramMergesSequentialRuns) {
  Simulator sim;
  ClusterConfig config = ClusterConfig::HddPool();
  config.num_disks = 2;
  BackendCluster cluster(&sim, config);
  // Three sequential 4K writes on disk 0 => one 12K merged run.
  cluster.Write(0, 0, 4096, [] {});
  cluster.Write(0, 4096, 4096, [] {});
  cluster.Write(0, 8192, 4096, [] {});
  // A separate write far away => its own run.
  cluster.Write(0, kGiB, 4096, [] {});
  sim.Run();
  cluster.FlushWriteRuns();
  const Histogram& h = cluster.write_size_histogram();
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.total_weight(), 16384u);
  EXPECT_EQ(h.BucketWeight(13), 12288u);  // [8K,16K) bucket holds the 12K run
  EXPECT_EQ(h.BucketWeight(12), 4096u);   // [4K,8K) bucket holds the 4K run
}

TEST(NetLink, TransfersSerializeOnLink) {
  Simulator sim;
  NetParams params;
  params.bandwidth_bps = 1e9;  // 1 GB/s for round numbers
  NetLink link(&sim, params);
  std::vector<Nanos> completions;
  link.SendToBackend(kMiB, [&] { completions.push_back(sim.now()); });
  link.SendToBackend(kMiB, [&] { completions.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(completions.size(), 2u);
  // Each 1 MiB at 1 GB/s ~= 1.05ms; second waits for first.
  EXPECT_NEAR(static_cast<double>(completions[1]),
              2.0 * static_cast<double>(completions[0]), 1e5);
}

}  // namespace
}  // namespace lsvd
