// Unit tests for the client NIC model: byte accounting on both queues
// (bytes_sent() was silently stuck at zero before the counters moved into
// SendToBackend/ReceiveFromBackend — see docs/METRICS.md `net.*`), transfer
// timing, and the opt-in metric gauges.
#include <gtest/gtest.h>

#include <string>

#include "src/sim/net_link.h"
#include "src/sim/simulator.h"
#include "src/util/metrics.h"

namespace lsvd {
namespace {

TEST(NetLinkTest, CountsBytesOnBothQueues) {
  Simulator sim;
  NetLink link(&sim, NetParams{});
  EXPECT_EQ(link.bytes_sent(), 0u);
  EXPECT_EQ(link.bytes_received(), 0u);

  int done = 0;
  link.SendToBackend(1000, [&] { done++; });
  link.SendToBackend(24, [&] { done++; });
  link.ReceiveFromBackend(4096, [&] { done++; });
  // Counters register at submit time (queue admission), not completion.
  EXPECT_EQ(link.bytes_sent(), 1024u);
  EXPECT_EQ(link.bytes_received(), 4096u);

  sim.Run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(link.bytes_sent(), 1024u);
  EXPECT_EQ(link.bytes_received(), 4096u);
}

TEST(NetLinkTest, TransferTimeMatchesConfiguredBandwidth) {
  Simulator sim;
  NetLink link(&sim, NetParams{});  // 1.25e9 B/s (10 Gbit)
  EXPECT_EQ(link.TransferTime(1250000), Nanos{1000000});  // 1.25 MB in 1 ms
  EXPECT_EQ(link.TransferTime(0), Nanos{0});
}

TEST(NetLinkTest, TxAndRxSerializeIndependently) {
  Simulator sim;
  NetLink link(&sim, NetParams{});
  // Two same-size transfers per direction: the second on each queue waits
  // for the first, but tx and rx do not wait on each other.
  const uint64_t bytes = 1250000;  // 1 ms on the wire
  Nanos tx1 = -1, tx2 = -1, rx1 = -1, rx2 = -1;
  link.SendToBackend(bytes, [&] { tx1 = sim.now(); });
  link.SendToBackend(bytes, [&] { tx2 = sim.now(); });
  link.ReceiveFromBackend(bytes, [&] { rx1 = sim.now(); });
  link.ReceiveFromBackend(bytes, [&] { rx2 = sim.now(); });
  sim.Run();
  EXPECT_EQ(tx1, Nanos{1000000});
  EXPECT_EQ(tx2, Nanos{2000000});
  EXPECT_EQ(rx1, Nanos{1000000});
  EXPECT_EQ(rx2, Nanos{2000000});
}

TEST(NetLinkTest, RegisterMetricsExportsByteGauges) {
  Simulator sim;
  NetLink link(&sim, NetParams{});
  MetricsRegistry metrics;
  link.RegisterMetrics(&metrics);
  link.SendToBackend(512, [] {});
  link.ReceiveFromBackend(256, [] {});
  const std::string json = metrics.ToJson();
  EXPECT_NE(json.find("\"net.bytes_sent\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"net.bytes_received\""), std::string::npos) << json;
  // Gauges sample the live counters, pre-completion included.
  EXPECT_EQ(link.bytes_sent(), 512u);
  EXPECT_EQ(link.bytes_received(), 256u);
}

}  // namespace
}  // namespace lsvd
