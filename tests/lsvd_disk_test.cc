// Integration tests for the full LSVD virtual disk: read/write semantics,
// read-path routing, crash recovery (client crash and total cache loss),
// snapshots, clones, and the prefix-consistency guarantee (§2.2/§3.4).
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/lsvd/lsvd_disk.h"
#include "src/objstore/sim_object_store.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

class LsvdDiskTest : public ::testing::Test {
 protected:
  LsvdDiskTest() {
    config_ = TestWorld::SmallVolumeConfig();
    disk_ = std::make_unique<LsvdDisk>(&world_.host, &world_.store, config_);
    EXPECT_TRUE(OpenSync(&world_.sim, disk_.get(), &LsvdDisk::Create).ok());
  }

  TestWorld world_;
  LsvdConfig config_;
  std::unique_ptr<LsvdDisk> disk_;
};

TEST_F(LsvdDiskTest, WriteReadRoundTrip) {
  Buffer data = TestPattern(16 * kKiB, 1);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), kMiB, data).ok());
  auto r = ReadSync(&world_.sim, disk_.get(), kMiB, 16 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
  EXPECT_EQ(disk_->stats().writes, 1u);
  EXPECT_GE(disk_->stats().write_cache_hits, 1u);
}

TEST_F(LsvdDiskTest, UnwrittenRangesReadAsZeros) {
  auto r = ReadSync(&world_.sim, disk_.get(), 0, 8 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsAllZeros());
  EXPECT_GE(disk_->stats().zero_reads, 1u);
}

TEST_F(LsvdDiskTest, PartialOverwriteMergesCorrectly) {
  Buffer base = TestPattern(32 * kKiB, 2);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, base).ok());
  Buffer patch = TestPattern(8 * kKiB, 3);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 8 * kKiB, patch).ok());

  auto r = ReadSync(&world_.sim, disk_.get(), 0, 32 * kKiB);
  ASSERT_TRUE(r.ok());
  Buffer expect;
  expect.Append(base.Slice(0, 8 * kKiB));
  expect.Append(patch);
  expect.Append(base.Slice(16 * kKiB, 16 * kKiB));
  EXPECT_EQ(*r, expect);
}

TEST_F(LsvdDiskTest, RejectsBadArguments) {
  EXPECT_EQ(WriteSync(&world_.sim, disk_.get(), 100, Buffer::Zeros(4096)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(WriteSync(&world_.sim, disk_.get(), config_.volume_size,
                      Buffer::Zeros(4096))
                .code(),
            StatusCode::kOutOfRange);
  auto r = ReadSync(&world_.sim, disk_.get(), 0, 100);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LsvdDiskTest, DataFlowsToBackendAndStaysReadable) {
  // Write more than one batch, drain, verify reads come from the backend
  // once the write cache releases the records.
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(),
                          static_cast<uint64_t>(i) * kMiB,
                          TestPattern(256 * kKiB, 10 + i))
                    .ok());
  }
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  EXPECT_GT(disk_->backend().stats().objects_put, 0u);
  // All records synced; the object map covers the data; cached copies are
  // kept until space pressure (lazy FIFO eviction).
  EXPECT_TRUE(disk_->write_cache().fully_synced());
  EXPECT_EQ(disk_->backend().object_map().mapped_bytes(), 8u * 256 * kKiB);

  // After eviction (e.g. space pressure), reads route to the backend.
  disk_->write_cache().EvictReleasable();
  EXPECT_EQ(disk_->write_cache().map().mapped_bytes(), 0u);
  auto r = ReadSync(&world_.sim, disk_.get(), 3 * kMiB, 256 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(256 * kKiB, 13));
  EXPECT_GE(disk_->stats().backend_reads, 1u);
}

TEST_F(LsvdDiskTest, WriteLifecycleHistogramsPopulate) {
  // Push several batches through the full write lifecycle, then check that
  // every stage histogram (submit -> ack, batch open -> seal, seal ->
  // commit, journal append -> cache release) actually recorded samples.
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(),
                          static_cast<uint64_t>(i) * kMiB,
                          TestPattern(256 * kKiB, 20 + i))
                    .ok());
  }
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  // Exercise the read-routing histograms too: a write-cache hit and a
  // zero-fill read.
  ASSERT_TRUE(ReadSync(&world_.sim, disk_.get(), 0, 16 * kKiB).ok());
  ASSERT_TRUE(
      ReadSync(&world_.sim, disk_.get(), 9 * kMiB, 16 * kKiB).ok());

  const MetricsSnapshot snap = disk_->metrics().Snapshot();
  const MetricsSnapshot::Entry* ack = snap.Find("lsvd.write.ack_us");
  ASSERT_NE(ack, nullptr);
  EXPECT_GE(ack->count, 8u);
  EXPECT_GT(snap.Percentile("lsvd.write.ack_us", 0.5), 0.0);

  const MetricsSnapshot::Entry* seal =
      snap.Find("backend.batch.open_to_seal_us");
  ASSERT_NE(seal, nullptr);
  EXPECT_GE(seal->count, 1u);
  const MetricsSnapshot::Entry* commit =
      snap.Find("backend.batch.seal_to_commit_us");
  ASSERT_NE(commit, nullptr);
  EXPECT_GE(commit->count, 1u);
  // Drain commits the backend objects, which releases the journal records.
  const MetricsSnapshot::Entry* freed =
      snap.Find("lsvd.write_cache.append_to_free_us");
  ASSERT_NE(freed, nullptr);
  EXPECT_GE(freed->count, 1u);

  const MetricsSnapshot::Entry* e2e = snap.Find("lsvd.read.e2e_us");
  ASSERT_NE(e2e, nullptr);
  EXPECT_GE(e2e->count, 2u);
  EXPECT_GE(snap.Find("lsvd.read.write_cache_us")->count, 1u);
  EXPECT_GE(snap.Find("lsvd.read.zero_us")->count, 1u);
}

TEST_F(LsvdDiskTest, PrefetchFillsReadCache) {
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0,
                        TestPattern(512 * kKiB, 4))
                  .ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  disk_->write_cache().EvictReleasable();  // force reads to the backend
  // First 4 KiB read misses to the backend but prefetches a whole window.
  auto r1 = ReadSync(&world_.sim, disk_.get(), 0, 4 * kKiB);
  ASSERT_TRUE(r1.ok());
  world_.sim.Run();  // lines appear once their background fills land
  const uint64_t backend_reads = disk_->stats().backend_reads;
  EXPECT_GT(disk_->read_cache().stats().inserted_bytes, 4 * kKiB);
  // Nearby read now hits the read cache, no extra backend I/O.
  auto r2 = ReadSync(&world_.sim, disk_.get(), 64 * kKiB, 4 * kKiB);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, TestPattern(512 * kKiB, 4).Slice(64 * kKiB, 4 * kKiB));
  EXPECT_EQ(disk_->stats().backend_reads, backend_reads);
  EXPECT_GE(disk_->stats().read_cache_hits, 1u);
}

TEST_F(LsvdDiskTest, WriteInvalidatesReadCache) {
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0,
                        TestPattern(128 * kKiB, 5))
                  .ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  disk_->write_cache().EvictReleasable();  // miss to the backend, fill rc
  ASSERT_TRUE(ReadSync(&world_.sim, disk_.get(), 0, 128 * kKiB).ok());
  world_.sim.Run();  // lines appear once their background fills land
  ASSERT_GT(disk_->read_cache().map().mapped_bytes(), 0u);

  // Overwrite; even after the new write flows through and is evicted from
  // the write cache, reads must return the new data.
  Buffer newer = TestPattern(128 * kKiB, 6);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, newer).ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  disk_->write_cache().EvictReleasable();  // the write-after-read hazard case
  auto r = ReadSync(&world_.sim, disk_.get(), 0, 128 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, newer);
}

TEST_F(LsvdDiskTest, FlushCompletes) {
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, TestPattern(4096, 7)).ok());
  EXPECT_TRUE(FlushSync(&world_.sim, disk_.get()).ok());
  EXPECT_EQ(disk_->stats().flushes, 1u);
}

TEST_F(LsvdDiskTest, AgedBatchSealsWithoutReachingSize) {
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, TestPattern(4096, 8)).ok());
  EXPECT_EQ(disk_->backend().stats().objects_put, 0u);
  // Let the age timer fire.
  world_.sim.RunUntil(world_.sim.now() + 2 * config_.batch_max_age);
  world_.sim.Run();
  EXPECT_EQ(disk_->backend().stats().objects_put, 1u);
}

// --- crash recovery ---

TEST_F(LsvdDiskTest, ClientCrashRecoversAllCommittedWrites) {
  std::map<uint64_t, uint64_t> committed;  // vlba -> seed
  Rng rng(42);
  for (int i = 0; i < 50; i++) {
    const uint64_t vlba = rng.Uniform(1024) * 16 * kKiB;
    const uint64_t seed = 500 + static_cast<uint64_t>(i);
    ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), vlba,
                          TestPattern(16 * kKiB, seed))
                    .ok());
    committed[vlba] = seed;
  }
  ASSERT_TRUE(FlushSync(&world_.sim, disk_.get()).ok());  // commit barrier

  // Crash: power fails, client process dies with writeback incomplete.
  const DiskRegions regions = disk_->regions();
  disk_->Kill();
  world_.host.ssd()->PowerFail();
  world_.sim.Run();  // drain stale events

  disk_ = std::make_unique<LsvdDisk>(&world_.host, &world_.store, config_,
                                     regions);
  ASSERT_TRUE(
      OpenSync(&world_.sim, disk_.get(), &LsvdDisk::OpenAfterCrash).ok());

  // Every committed write is present with the right contents.
  for (const auto& [vlba, seed] : committed) {
    auto r = ReadSync(&world_.sim, disk_.get(), vlba, 16 * kKiB);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, TestPattern(16 * kKiB, seed)) << "vlba " << vlba;
  }
}

TEST_F(LsvdDiskTest, CrashReplayPushesTailToBackend) {
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0,
                        TestPattern(16 * kKiB, 1))
                  .ok());
  ASSERT_TRUE(FlushSync(&world_.sim, disk_.get()).ok());
  const DiskRegions regions = disk_->regions();
  disk_->Kill();
  world_.host.ssd()->PowerFail();
  world_.sim.Run();

  disk_ = std::make_unique<LsvdDisk>(&world_.host, &world_.store, config_,
                                     regions);
  ASSERT_TRUE(
      OpenSync(&world_.sim, disk_.get(), &LsvdDisk::OpenAfterCrash).ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  // The write that never reached the backend before the crash is there now.
  EXPECT_EQ(disk_->backend().object_map().mapped_bytes(), 16 * kKiB);

  // And a subsequent cache-loss open (backend only) still sees it.
  disk_->Kill();
  world_.sim.Run();
  ClientHost host2(&world_.sim, TestWorld::InstantHostConfig());
  LsvdDisk disk2(&host2, &world_.store, config_);
  ASSERT_TRUE(OpenSync(&world_.sim, &disk2, &LsvdDisk::OpenCacheLost).ok());
  auto r = ReadSync(&world_.sim, &disk2, 0, 16 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(16 * kKiB, 1));
}

TEST_F(LsvdDiskTest, CleanShutdownAndReopenRestoresReadCache) {
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0,
                        TestPattern(256 * kKiB, 9))
                  .ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());
  disk_->write_cache().EvictReleasable();  // miss to the backend, fill rc
  ASSERT_TRUE(ReadSync(&world_.sim, disk_.get(), 0, 256 * kKiB).ok());
  world_.sim.Run();  // lines appear once their background fills land
  ASSERT_GT(disk_->read_cache().map().mapped_bytes(), 0u);

  std::optional<Status> s;
  disk_->CleanShutdown([&](Status st) { s = st; });
  world_.sim.Run();
  ASSERT_TRUE(s->ok());
  const DiskRegions regions = disk_->regions();
  disk_->Kill();
  world_.sim.Run();

  disk_ = std::make_unique<LsvdDisk>(&world_.host, &world_.store, config_,
                                     regions);
  ASSERT_TRUE(OpenSync(&world_.sim, disk_.get(), &LsvdDisk::OpenClean).ok());
  EXPECT_GT(disk_->read_cache().map().mapped_bytes(), 0u);
  auto r = ReadSync(&world_.sim, disk_.get(), 0, 256 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(256 * kKiB, 9));
}

// --- snapshots and clones ---

TEST_F(LsvdDiskTest, SnapshotAndMountReadOnlyView) {
  Buffer v1 = TestPattern(64 * kKiB, 1);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, v1).ok());
  std::optional<Result<uint64_t>> snap;
  disk_->Snapshot([&](Result<uint64_t> r) { snap = std::move(r); });
  world_.sim.Run();
  ASSERT_TRUE(snap->ok());
  const uint64_t snap_seq = snap->value();

  Buffer v2 = TestPattern(64 * kKiB, 2);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, v2).ok());
  ASSERT_TRUE(DrainSync(&world_.sim, disk_.get()).ok());

  // Mount the snapshot as a separate read-only view.
  LsvdConfig snap_config = config_;
  snap_config.open_limit_seq = snap_seq;
  LsvdDisk view(&world_.host, &world_.store, snap_config);
  ASSERT_TRUE(OpenSync(&world_.sim, &view, &LsvdDisk::OpenCacheLost).ok());
  auto r = ReadSync(&world_.sim, &view, 0, 64 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, v1);

  // The live volume still sees v2.
  auto live = ReadSync(&world_.sim, disk_.get(), 0, 64 * kKiB);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, v2);
}

TEST_F(LsvdDiskTest, CloneSharesBaseAndDiverges) {
  Buffer base_data = TestPattern(128 * kKiB, 3);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, base_data).ok());
  std::optional<Result<uint64_t>> snap;
  disk_->Snapshot([&](Result<uint64_t> r) { snap = std::move(r); });
  world_.sim.Run();
  ASSERT_TRUE(snap->ok());

  LsvdConfig clone_config = disk_->MakeCloneConfig("clone1", snap->value());
  LsvdDisk clone(&world_.host, &world_.store, clone_config);
  ASSERT_TRUE(OpenSync(&world_.sim, &clone, &LsvdDisk::Create).ok());

  // Clone sees base data.
  auto r = ReadSync(&world_.sim, &clone, 0, 128 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, base_data);

  // Clone writes diverge; base unchanged.
  Buffer clone_data = TestPattern(64 * kKiB, 4);
  ASSERT_TRUE(WriteSync(&world_.sim, &clone, 0, clone_data).ok());
  ASSERT_TRUE(DrainSync(&world_.sim, &clone).ok());
  auto cr = ReadSync(&world_.sim, &clone, 0, 64 * kKiB);
  ASSERT_TRUE(cr.ok());
  EXPECT_EQ(*cr, clone_data);
  auto br = ReadSync(&world_.sim, disk_.get(), 0, 64 * kKiB);
  ASSERT_TRUE(br.ok());
  EXPECT_EQ(*br, base_data.Slice(0, 64 * kKiB));

  // Clone objects carry the clone's name; base objects are untouched.
  EXPECT_FALSE(world_.store.List(DataObjectPrefix("clone1")).empty());
}

TEST_F(LsvdDiskTest, CloneRecoveryAfterCacheLoss) {
  Buffer base_data = TestPattern(64 * kKiB, 5);
  ASSERT_TRUE(WriteSync(&world_.sim, disk_.get(), 0, base_data).ok());
  std::optional<Result<uint64_t>> snap;
  disk_->Snapshot([&](Result<uint64_t> r) { snap = std::move(r); });
  world_.sim.Run();
  ASSERT_TRUE(snap->ok());

  LsvdConfig clone_config = disk_->MakeCloneConfig("clone2", snap->value());
  {
    LsvdDisk clone(&world_.host, &world_.store, clone_config);
    ASSERT_TRUE(OpenSync(&world_.sim, &clone, &LsvdDisk::Create).ok());
    ASSERT_TRUE(WriteSync(&world_.sim, &clone, 64 * kKiB,
                          TestPattern(64 * kKiB, 6))
                    .ok());
    ASSERT_TRUE(DrainSync(&world_.sim, &clone).ok());
    clone.Kill();
    world_.sim.Run();
  }
  // Cache lost: recover clone purely from the object store.
  ClientHost host2(&world_.sim, TestWorld::InstantHostConfig());
  LsvdDisk clone(&host2, &world_.store, clone_config);
  ASSERT_TRUE(OpenSync(&world_.sim, &clone, &LsvdDisk::OpenCacheLost).ok());
  auto r0 = ReadSync(&world_.sim, &clone, 0, 64 * kKiB);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(*r0, base_data);
  auto r1 = ReadSync(&world_.sim, &clone, 64 * kKiB, 64 * kKiB);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, TestPattern(64 * kKiB, 6));
}

// --- prefix consistency property (worst case: total cache loss) ---

// Writes carry strictly increasing version stamps; after a random-time crash
// with total cache loss, the recovered image must equal the effect of some
// prefix of the acknowledged writes (§2.2).
class PrefixConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefixConsistency, HoldsUnderRandomCrashWithCacheLoss) {
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 16 * kGiB;
  hc.ssd = SsdParams::P3700();  // realistic timing => PUTs genuinely in flight
  ClientHost host(&sim, hc);
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.volume_size = 16 * kMiB;
  config.batch_bytes = 256 * kKiB;
  config.pass_through_ssd = true;

  auto disk = std::make_unique<LsvdDisk>(&host, &store, config);
  std::optional<Status> created;
  disk->Create([&](Status s) { created = s; });
  sim.Run();
  ASSERT_TRUE(created.has_value() && created->ok());

  Rng rng(GetParam());
  constexpr uint64_t kBlocks = 64;   // 4 KiB blocks in play
  constexpr int kWrites = 400;
  // Pre-draw the target block of every write so the check below can replay
  // the sequence deterministically.
  std::vector<uint64_t> blocks(kWrites);
  for (auto& b : blocks) {
    b = rng.Uniform(kBlocks);
  }
  const Nanos crash_at = static_cast<Nanos>(rng.UniformRange(
      static_cast<uint64_t>(kMillisecond),
      static_cast<uint64_t>(80 * kMillisecond)));

  int issued = 0;
  std::function<void()> issue = [&]() {
    if (issued >= kWrites) {
      return;
    }
    const int id = issued++;
    disk->Write(blocks[static_cast<size_t>(id)] * 4096,
                TestPattern(4096, 10000 + static_cast<uint64_t>(id)),
                [&issue](Status) { issue(); });
  };
  for (int q = 0; q < 8; q++) {  // queue depth 8
    issue();
  }
  // Crash at a random instant while writes and PUTs are in flight.
  sim.RunUntil(crash_at);

  disk->Kill();
  store.ClientCrash();
  host.ssd()->DiscardAll();  // total cache loss
  sim.Run();

  // Recover on a fresh host from the backend only.
  ClientHost host2(&sim, TestWorld::InstantHostConfig());
  LsvdDisk recovered(&host2, &store, config);
  ASSERT_TRUE(OpenSync(&sim, &recovered, &LsvdDisk::OpenCacheLost).ok());

  // Read back every block and decode which write it reflects.
  std::vector<int> got(kBlocks, -1);
  for (uint64_t b = 0; b < kBlocks; b++) {
    auto r = ReadSync(&sim, &recovered, b * 4096, 4096);
    ASSERT_TRUE(r.ok());
    if (r->IsAllZeros()) {
      continue;
    }
    // Identify the write id by matching against issued patterns.
    bool matched = false;
    for (int id = 0; id < issued; id++) {
      if (*r == TestPattern(4096, 10000 + static_cast<uint64_t>(id))) {
        got[b] = id;
        matched = true;
        break;
      }
    }
    ASSERT_TRUE(matched) << "block " << b << " holds torn/unknown data";
  }

  // The image must correspond to a prefix of the *issue-order* write
  // sequence: choose K = max id present; replay writes 0..K and compare.
  int max_id = -1;
  for (uint64_t b = 0; b < kBlocks; b++) {
    max_id = std::max(max_id, got[b]);
  }
  std::vector<int> expect(kBlocks, -1);
  for (int id = 0; id <= max_id; id++) {
    expect[blocks[static_cast<size_t>(id)]] = id;
  }
  for (uint64_t b = 0; b < kBlocks; b++) {
    EXPECT_EQ(got[b], expect[b]) << "block " << b << " (prefix K=" << max_id
                                 << ", seed " << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixConsistency,
                         ::testing::Values(1, 2, 3, 7, 11, 23));

}  // namespace
}  // namespace lsvd
