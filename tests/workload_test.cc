// Unit tests for workload generators and the closed-loop driver.
#include <gtest/gtest.h>

#include "src/workload/driver.h"
#include "src/workload/filebench.h"
#include "src/workload/fio_gen.h"
#include "src/workload/trace_gen.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

TEST(FioGen, RandWriteStaysAlignedAndBounded) {
  FioConfig config;
  config.pattern = FioConfig::Pattern::kRandWrite;
  config.block_size = 16 * kKiB;
  config.volume_size = kGiB;
  config.max_ops = 500;
  auto gen = MakeFioGen(config);
  WorkloadOp op;
  int count = 0;
  while (gen(&op)) {
    EXPECT_EQ(op.kind, WorkloadOp::Kind::kWrite);
    EXPECT_EQ(op.len, 16 * kKiB);
    EXPECT_EQ(op.offset % (16 * kKiB), 0u);
    EXPECT_LE(op.offset + op.len, kGiB);
    count++;
  }
  EXPECT_EQ(count, 500);
}

TEST(FioGen, SequentialAdvancesAndWraps) {
  FioConfig config;
  config.pattern = FioConfig::Pattern::kSeqWrite;
  config.block_size = 64 * kKiB;
  config.volume_size = 256 * kKiB;  // 4 blocks: wraps quickly
  config.max_ops = 6;
  auto gen = MakeFioGen(config);
  WorkloadOp op;
  std::vector<uint64_t> offsets;
  while (gen(&op)) {
    offsets.push_back(op.offset);
  }
  EXPECT_EQ(offsets, (std::vector<uint64_t>{0, 65536, 131072, 196608, 0,
                                            65536}));
}

TEST(FioGen, ByteBudgetStops) {
  FioConfig config;
  config.pattern = FioConfig::Pattern::kRandRead;
  config.block_size = 4 * kKiB;
  config.volume_size = kMiB;
  config.max_bytes = 40 * kKiB;
  auto gen = MakeFioGen(config);
  WorkloadOp op;
  uint64_t bytes = 0;
  while (gen(&op)) {
    bytes += op.len;
  }
  EXPECT_EQ(bytes, 40 * kKiB);
}

TEST(PreconditionGen, CoversWholeVolumeOnce) {
  auto gen = MakePreconditionGen(10 * kMiB, kMiB);
  WorkloadOp op;
  uint64_t covered = 0;
  uint64_t expected_offset = 0;
  while (gen(&op)) {
    EXPECT_EQ(op.offset, expected_offset);
    expected_offset += op.len;
    covered += op.len;
  }
  EXPECT_EQ(covered, 10 * kMiB);
}

TEST(Filebench, ProfilesMatchTable3Statistics) {
  for (const auto& profile :
       {FilebenchProfile::Fileserver(), FilebenchProfile::Oltp(),
        FilebenchProfile::Varmail()}) {
    auto gen = MakeFilebenchGen(profile, 32 * kGiB, 7);
    WorkloadOp op;
    uint64_t writes = 0;
    uint64_t write_bytes = 0;
    uint64_t flushes = 0;
    for (int i = 0; i < 200000; i++) {
      ASSERT_TRUE(gen(&op));
      if (op.kind == WorkloadOp::Kind::kWrite) {
        writes++;
        write_bytes += op.len;
        EXPECT_EQ(op.offset % kBlockSize, 0u);
        EXPECT_EQ(op.len % kBlockSize, 0u);
      } else if (op.kind == WorkloadOp::Kind::kFlush) {
        flushes++;
      }
    }
    ASSERT_GT(writes, 0u) << profile.name;
    const double mean_write =
        static_cast<double>(write_bytes) / static_cast<double>(writes);
    // The mean is coarse (block-aligned exponential), allow 40% error.
    EXPECT_NEAR(mean_write, profile.mean_write_size,
                profile.mean_write_size * 0.4)
        << profile.name;
    if (profile.writes_per_sync < 1000) {
      ASSERT_GT(flushes, 0u) << profile.name;
      const double per_sync =
          static_cast<double>(writes) / static_cast<double>(flushes);
      EXPECT_NEAR(per_sync, profile.writes_per_sync,
                  profile.writes_per_sync * 0.3)
          << profile.name;
    }
  }
}

TEST(Filebench, VarmailIsSyncHeavy) {
  auto gen = MakeFilebenchGen(FilebenchProfile::Varmail(), kGiB, 3);
  WorkloadOp op;
  uint64_t flushes = 0;
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(gen(&op));
    if (op.kind == WorkloadOp::Kind::kFlush) {
      flushes++;
    }
  }
  EXPECT_GT(flushes, 500u);  // roughly one flush per ~12 ops
}

TEST(TraceGen, RespectsBudgetAndFootprint) {
  for (const auto& profile : TraceProfile::Table5()) {
    auto stream = MakeTraceStream(profile, /*scale=*/64, 5);
    uint64_t vlba = 0;
    uint64_t len = 0;
    uint64_t total = 0;
    uint64_t max_end = 0;
    while (stream(&vlba, &len)) {
      total += len;
      max_end = std::max(max_end, vlba + len);
      ASSERT_EQ(vlba % kBlockSize, 0u) << profile.name;
      ASSERT_EQ(len % kBlockSize, 0u) << profile.name;
    }
    EXPECT_GE(total, profile.total_write_bytes / 64) << profile.name;
    EXPECT_LE(max_end, profile.footprint / 64 + 8 * kMiB) << profile.name;
  }
}

TEST(TraceGen, OverwriteProfileIsCoalescable) {
  // w41 has immediate_overwrite = 0.71: many repeats of recent writes.
  TraceProfile w41;
  for (const auto& t : TraceProfile::Table5()) {
    if (t.name == "w41") {
      w41 = t;
    }
  }
  auto stream = MakeTraceStream(w41, 512, 9);
  uint64_t vlba = 0;
  uint64_t len = 0;
  std::map<uint64_t, int> seen;
  uint64_t repeats = 0;
  uint64_t ops = 0;
  while (stream(&vlba, &len)) {
    ops++;
    if (seen[vlba]++ > 0) {
      repeats++;
    }
  }
  ASSERT_GT(ops, 100u);
  EXPECT_GT(static_cast<double>(repeats) / static_cast<double>(ops), 0.4);
}

TEST(Driver, RunsWorkloadToCompletion) {
  TestWorld world;
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  LsvdDisk disk(&world.host, &world.store, config);
  ASSERT_TRUE(OpenSync(&world.sim, &disk, &LsvdDisk::Create).ok());

  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandWrite;
  fio.block_size = 16 * kKiB;
  fio.volume_size = disk.size();
  fio.max_ops = 200;
  Driver driver(&world.sim, &disk, MakeFioGen(fio), /*queue_depth=*/8);
  bool done = false;
  driver.Run([&] { done = true; });
  world.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(driver.stats().ops, 200u);
  EXPECT_EQ(driver.stats().bytes_written, 200u * 16 * kKiB);
  EXPECT_EQ(disk.stats().writes, 200u);
}

TEST(Driver, DeadlineStopsLongWorkload) {
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 8 * kGiB;
  hc.ssd = SsdParams::P3700();  // realistic latency so time passes
  ClientHost host(&sim, hc);
  MemObjectStore store(&sim);
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  LsvdDisk disk(&host, &store, config);
  ASSERT_TRUE(OpenSync(&sim, &disk, &LsvdDisk::Create).ok());

  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandWrite;
  fio.block_size = 4 * kKiB;
  fio.volume_size = disk.size();
  Driver driver(&sim, &disk, MakeFioGen(fio), 4,
                /*deadline=*/sim.now() + 50 * kMillisecond);
  bool done = false;
  driver.Run([&] { done = true; });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_GT(driver.stats().ops, 0u);
  EXPECT_LE(driver.stats().finished_at, sim.now());
}

TEST(Driver, TimelineBucketsAccumulateBytes) {
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 8 * kGiB;
  hc.ssd = SsdParams::P3700();
  ClientHost host(&sim, hc);
  MemObjectStore store(&sim);
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  LsvdDisk disk(&host, &store, config);
  ASSERT_TRUE(OpenSync(&sim, &disk, &LsvdDisk::Create).ok());

  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kSeqWrite;
  fio.block_size = 64 * kKiB;
  fio.volume_size = disk.size();
  fio.max_ops = 100;
  Driver driver(&sim, &disk, MakeFioGen(fio), 4);
  driver.EnableTimeline(10 * kMillisecond);
  bool done = false;
  driver.Run([&] { done = true; });
  sim.Run();
  ASSERT_TRUE(done);
  uint64_t total = 0;
  for (const uint64_t b : driver.write_timeline()) {
    total += b;
  }
  EXPECT_EQ(total, 100u * 64 * kKiB);
}

}  // namespace
}  // namespace lsvd
