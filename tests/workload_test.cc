// Unit tests for workload generators and the closed- and open-loop driver.
#include <gtest/gtest.h>

#include "src/workload/arrival.h"
#include "src/workload/driver.h"
#include "src/workload/filebench.h"
#include "src/workload/fio_gen.h"
#include "src/workload/trace_gen.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

TEST(FioGen, RandWriteStaysAlignedAndBounded) {
  FioConfig config;
  config.pattern = FioConfig::Pattern::kRandWrite;
  config.block_size = 16 * kKiB;
  config.volume_size = kGiB;
  config.max_ops = 500;
  auto gen = MakeFioGen(config);
  WorkloadOp op;
  int count = 0;
  while (gen(&op)) {
    EXPECT_EQ(op.kind, WorkloadOp::Kind::kWrite);
    EXPECT_EQ(op.len, 16 * kKiB);
    EXPECT_EQ(op.offset % (16 * kKiB), 0u);
    EXPECT_LE(op.offset + op.len, kGiB);
    count++;
  }
  EXPECT_EQ(count, 500);
}

TEST(FioGen, SequentialAdvancesAndWraps) {
  FioConfig config;
  config.pattern = FioConfig::Pattern::kSeqWrite;
  config.block_size = 64 * kKiB;
  config.volume_size = 256 * kKiB;  // 4 blocks: wraps quickly
  config.max_ops = 6;
  auto gen = MakeFioGen(config);
  WorkloadOp op;
  std::vector<uint64_t> offsets;
  while (gen(&op)) {
    offsets.push_back(op.offset);
  }
  EXPECT_EQ(offsets, (std::vector<uint64_t>{0, 65536, 131072, 196608, 0,
                                            65536}));
}

TEST(FioGen, ByteBudgetStops) {
  FioConfig config;
  config.pattern = FioConfig::Pattern::kRandRead;
  config.block_size = 4 * kKiB;
  config.volume_size = kMiB;
  config.max_bytes = 40 * kKiB;
  auto gen = MakeFioGen(config);
  WorkloadOp op;
  uint64_t bytes = 0;
  while (gen(&op)) {
    bytes += op.len;
  }
  EXPECT_EQ(bytes, 40 * kKiB);
}

TEST(PreconditionGen, CoversWholeVolumeOnce) {
  auto gen = MakePreconditionGen(10 * kMiB, kMiB);
  WorkloadOp op;
  uint64_t covered = 0;
  uint64_t expected_offset = 0;
  while (gen(&op)) {
    EXPECT_EQ(op.offset, expected_offset);
    expected_offset += op.len;
    covered += op.len;
  }
  EXPECT_EQ(covered, 10 * kMiB);
}

TEST(Filebench, ProfilesMatchTable3Statistics) {
  for (const auto& profile :
       {FilebenchProfile::Fileserver(), FilebenchProfile::Oltp(),
        FilebenchProfile::Varmail()}) {
    auto gen = MakeFilebenchGen(profile, 32 * kGiB, 7);
    WorkloadOp op;
    uint64_t writes = 0;
    uint64_t write_bytes = 0;
    uint64_t flushes = 0;
    for (int i = 0; i < 200000; i++) {
      ASSERT_TRUE(gen(&op));
      if (op.kind == WorkloadOp::Kind::kWrite) {
        writes++;
        write_bytes += op.len;
        EXPECT_EQ(op.offset % kBlockSize, 0u);
        EXPECT_EQ(op.len % kBlockSize, 0u);
      } else if (op.kind == WorkloadOp::Kind::kFlush) {
        flushes++;
      }
    }
    ASSERT_GT(writes, 0u) << profile.name;
    const double mean_write =
        static_cast<double>(write_bytes) / static_cast<double>(writes);
    // The mean is coarse (block-aligned exponential), allow 40% error.
    EXPECT_NEAR(mean_write, profile.mean_write_size,
                profile.mean_write_size * 0.4)
        << profile.name;
    if (profile.writes_per_sync < 1000) {
      ASSERT_GT(flushes, 0u) << profile.name;
      const double per_sync =
          static_cast<double>(writes) / static_cast<double>(flushes);
      EXPECT_NEAR(per_sync, profile.writes_per_sync,
                  profile.writes_per_sync * 0.3)
          << profile.name;
    }
  }
}

TEST(Filebench, VarmailIsSyncHeavy) {
  auto gen = MakeFilebenchGen(FilebenchProfile::Varmail(), kGiB, 3);
  WorkloadOp op;
  uint64_t flushes = 0;
  for (int i = 0; i < 10000; i++) {
    ASSERT_TRUE(gen(&op));
    if (op.kind == WorkloadOp::Kind::kFlush) {
      flushes++;
    }
  }
  EXPECT_GT(flushes, 500u);  // roughly one flush per ~12 ops
}

TEST(TraceGen, RespectsBudgetAndFootprint) {
  for (const auto& profile : TraceProfile::Table5()) {
    auto stream = MakeTraceStream(profile, /*scale=*/64, 5);
    uint64_t vlba = 0;
    uint64_t len = 0;
    uint64_t total = 0;
    uint64_t max_end = 0;
    while (stream(&vlba, &len)) {
      total += len;
      max_end = std::max(max_end, vlba + len);
      ASSERT_EQ(vlba % kBlockSize, 0u) << profile.name;
      ASSERT_EQ(len % kBlockSize, 0u) << profile.name;
    }
    EXPECT_GE(total, profile.total_write_bytes / 64) << profile.name;
    EXPECT_LE(max_end, profile.footprint / 64 + 8 * kMiB) << profile.name;
  }
}

TEST(TraceGen, OverwriteProfileIsCoalescable) {
  // w41 has immediate_overwrite = 0.71: many repeats of recent writes.
  TraceProfile w41;
  for (const auto& t : TraceProfile::Table5()) {
    if (t.name == "w41") {
      w41 = t;
    }
  }
  auto stream = MakeTraceStream(w41, 512, 9);
  uint64_t vlba = 0;
  uint64_t len = 0;
  std::map<uint64_t, int> seen;
  uint64_t repeats = 0;
  uint64_t ops = 0;
  while (stream(&vlba, &len)) {
    ops++;
    if (seen[vlba]++ > 0) {
      repeats++;
    }
  }
  ASSERT_GT(ops, 100u);
  EXPECT_GT(static_cast<double>(repeats) / static_cast<double>(ops), 0.4);
}

TEST(Arrival, PoissonGapsHaveExponentialMeanAndVariance) {
  // Constant profile: inter-arrival gaps are iid Exponential(1/rate), so the
  // sample mean is 1/rate and the sample variance is (1/rate)^2.
  ArrivalConfig config;
  config.profile = ArrivalConfig::Profile::kConstant;
  config.rate = 10000.0;  // mean gap 100 us
  config.seed = 42;
  ArrivalProcess arrivals(config);
  const int n = 20000;
  std::vector<double> gaps;
  Nanos prev = 0;
  for (int i = 0; i < n; i++) {
    const Nanos t = arrivals.Next();
    ASSERT_GT(t, prev);  // strictly increasing
    gaps.push_back(ToSeconds(t - prev));
    prev = t;
  }
  double sum = 0;
  for (const double g : gaps) {
    sum += g;
  }
  const double mean = sum / n;
  double var = 0;
  for (const double g : gaps) {
    var += (g - mean) * (g - mean);
  }
  var /= n - 1;
  const double expect_mean = 1.0 / config.rate;
  EXPECT_NEAR(mean, expect_mean, expect_mean * 0.03);
  EXPECT_NEAR(var, expect_mean * expect_mean,
              expect_mean * expect_mean * 0.10);
}

TEST(Arrival, ThinningPreservesLongRunMeanRate) {
  // Burst profile long-run rate = rate * (1 + (multiplier-1) * duty_cycle).
  ArrivalConfig config;
  config.profile = ArrivalConfig::Profile::kBurst;
  config.rate = 5000.0;
  config.period = 10 * kMillisecond;
  config.burst_duration = 2 * kMillisecond;  // 20% duty
  config.multiplier = 4.0;
  config.seed = 7;
  ArrivalProcess arrivals(config);
  const Nanos horizon = 4 * kSecond;
  uint64_t count = 0;
  while (arrivals.Next() < horizon) {
    count++;
  }
  const double expected =
      config.rate * (1.0 + (config.multiplier - 1.0) * 0.2) *
      ToSeconds(horizon);
  EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.05);
}

TEST(Arrival, RateAtFollowsProfile) {
  ArrivalConfig burst;
  burst.profile = ArrivalConfig::Profile::kBurst;
  burst.rate = 1000.0;
  burst.period = 10 * kMillisecond;
  burst.burst_duration = kMillisecond;
  burst.multiplier = 8.0;
  ArrivalProcess bp(burst);
  EXPECT_DOUBLE_EQ(bp.RateAt(0), 8000.0);
  EXPECT_DOUBLE_EQ(bp.RateAt(5 * kMillisecond), 1000.0);
  EXPECT_DOUBLE_EQ(bp.RateAt(10 * kMillisecond), 8000.0);  // periodic

  ArrivalConfig diurnal;
  diurnal.profile = ArrivalConfig::Profile::kDiurnal;
  diurnal.rate = 1000.0;
  diurnal.period = 4 * kSecond;
  diurnal.depth = 0.5;
  ArrivalProcess dp(diurnal);
  EXPECT_NEAR(dp.RateAt(kSecond), 1500.0, 1e-6);      // sin peak at T/4
  EXPECT_NEAR(dp.RateAt(3 * kSecond), 500.0, 1e-6);   // trough at 3T/4
}

TEST(Arrival, SameSeedSameSequence) {
  ArrivalConfig config;
  config.profile = ArrivalConfig::Profile::kDiurnal;
  config.rate = 2000.0;
  config.period = kSecond;
  config.depth = 0.8;
  config.seed = 99;
  ArrivalProcess a(config);
  ArrivalProcess b(config);
  for (int i = 0; i < 1000; i++) {
    ASSERT_EQ(a.Next(), b.Next()) << "diverged at arrival " << i;
  }
  ArrivalConfig other = config;
  other.seed = 100;
  ArrivalProcess a2(config);
  ArrivalProcess c(other);
  bool differs = false;
  for (int i = 0; i < 100 && !differs; i++) {
    differs = a2.Next() != c.Next();
  }
  EXPECT_TRUE(differs);
}

TEST(Driver, RunsWorkloadToCompletion) {
  TestWorld world;
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  LsvdDisk disk(&world.host, &world.store, config);
  ASSERT_TRUE(OpenSync(&world.sim, &disk, &LsvdDisk::Create).ok());

  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandWrite;
  fio.block_size = 16 * kKiB;
  fio.volume_size = disk.size();
  fio.max_ops = 200;
  Driver driver(&world.sim, &disk, MakeFioGen(fio), /*queue_depth=*/8);
  bool done = false;
  driver.Run([&] { done = true; });
  world.sim.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(driver.stats().ops, 200u);
  EXPECT_EQ(driver.stats().bytes_written, 200u * 16 * kKiB);
  EXPECT_EQ(disk.stats().writes, 200u);
}

TEST(Driver, DeadlineStopsLongWorkload) {
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 8 * kGiB;
  hc.ssd = SsdParams::P3700();  // realistic latency so time passes
  ClientHost host(&sim, hc);
  MemObjectStore store(&sim);
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  LsvdDisk disk(&host, &store, config);
  ASSERT_TRUE(OpenSync(&sim, &disk, &LsvdDisk::Create).ok());

  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandWrite;
  fio.block_size = 4 * kKiB;
  fio.volume_size = disk.size();
  Driver driver(&sim, &disk, MakeFioGen(fio), 4,
                /*deadline=*/sim.now() + 50 * kMillisecond);
  bool done = false;
  driver.Run([&] { done = true; });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_GT(driver.stats().ops, 0u);
  EXPECT_LE(driver.stats().finished_at, sim.now());
}

namespace openloop {

// One complete open-loop run against a realistic-latency LSVD volume with
// adaptive batching on; returns the full metrics dump so determinism checks
// cover arrivals, queueing split, and every component counter at once.
std::string RunOnce(uint64_t seed, uint64_t* ops_out = nullptr) {
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 8 * kGiB;
  hc.ssd = SsdParams::P3700();  // realistic latency so queues actually form
  ClientHost host(&sim, hc);
  MemObjectStore store(&sim);
  MetricsRegistry metrics;
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.batch_seal_deadline = 200 * kMicrosecond;
  config.journal_flush_coalescing = true;
  config.small_write_fast_path = true;
  LsvdDisk disk(&host, &store, config, &metrics);
  EXPECT_TRUE(OpenSync(&sim, &disk, &LsvdDisk::Create).ok());

  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kRandWrite;
  fio.block_size = 4 * kKiB;
  fio.volume_size = disk.size();
  Driver driver(&sim, &disk, MakeFioGen(fio), /*queue_depth=*/8,
                /*deadline=*/sim.now() + 50 * kMillisecond, &metrics, "drv");
  ArrivalConfig arrivals;
  arrivals.profile = ArrivalConfig::Profile::kBurst;
  arrivals.rate = 20000.0;
  arrivals.period = 10 * kMillisecond;
  arrivals.burst_duration = 2 * kMillisecond;
  arrivals.multiplier = 4.0;
  arrivals.seed = seed;
  driver.EnableOpenLoop(arrivals, /*max_outstanding=*/32);
  bool done = false;
  driver.Run([&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_GT(driver.stats().ops, 0u);
  if (ops_out != nullptr) {
    *ops_out = driver.stats().ops;
  }
  return metrics.ToJson();
}

}  // namespace openloop

TEST(Driver, OpenLoopCompletesAndSplitsQueueing) {
  uint64_t ops = 0;
  const std::string json = openloop::RunOnce(7, &ops);
  // ~20k/s * 50ms * burst uplift => on the order of a thousand arrivals.
  EXPECT_GT(ops, 500u);
  // Open-loop mode registers the queue/service split alongside the
  // client-observed totals.
  EXPECT_NE(json.find("drv.queue_us"), std::string::npos);
  EXPECT_NE(json.find("drv.service_us"), std::string::npos);
  EXPECT_NE(json.find("drv.write_us"), std::string::npos);
}

TEST(Driver, OpenLoopSameSeedIsFullyDeterministic) {
  // The whole world dump — arrival-driven op counts, latency histograms,
  // component counters — must be byte-identical across runs with one seed,
  // and must differ for another seed (different arrival sequence).
  const std::string a = openloop::RunOnce(7);
  const std::string b = openloop::RunOnce(7);
  EXPECT_EQ(a, b);
  const std::string c = openloop::RunOnce(8);
  EXPECT_NE(a, c);
}

TEST(Driver, TimelineBucketsAccumulateBytes) {
  Simulator sim;
  ClientHostConfig hc;
  hc.ssd_capacity = 8 * kGiB;
  hc.ssd = SsdParams::P3700();
  ClientHost host(&sim, hc);
  MemObjectStore store(&sim);
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  LsvdDisk disk(&host, &store, config);
  ASSERT_TRUE(OpenSync(&sim, &disk, &LsvdDisk::Create).ok());

  FioConfig fio;
  fio.pattern = FioConfig::Pattern::kSeqWrite;
  fio.block_size = 64 * kKiB;
  fio.volume_size = disk.size();
  fio.max_ops = 100;
  Driver driver(&sim, &disk, MakeFioGen(fio), 4);
  driver.EnableTimeline(10 * kMillisecond);
  bool done = false;
  driver.Run([&] { done = true; });
  sim.Run();
  ASSERT_TRUE(done);
  uint64_t total = 0;
  for (const uint64_t b : driver.write_timeline()) {
    total += b;
  }
  EXPECT_EQ(total, 100u * 64 * kKiB);
}

}  // namespace
}  // namespace lsvd
