// Crash-recovery torture harness.
//
// Each case runs a seeded random workload of stamped writes against a fresh
// disk, kills the client after a random number of simulator steps (optionally
// with backend fault injection active), re-opens the volume via OpenAfterCrash
// or OpenCacheLost, and checks the recovered image against a shadow model:
//
//  - Every 4 KiB block is either untouched (all zero) or carries the full
//    stamp of exactly one write from the plan (write index + absolute block
//    address, repeated through the block).  Journal replay is record-atomic,
//    so a partially applied write is an integrity error.
//  - The image as a whole must equal a replay of the first M plan writes,
//    where M is the highest stamp observed.  This is the prefix-consistency
//    rule of §3.3: recovery may lose a tail of the write history but must
//    never lose a write that a later surviving write follows.
//  - OpenAfterCrash must additionally recover at least every acknowledged
//    write (client crash keeps the SSD journal), or at least every write
//    covered by a completed flush barrier when the SSD also loses power.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <vector>

#include "src/lsvd/lsvd_disk.h"
#include "src/objstore/faulty_object_store.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

constexpr uint64_t kStampBlock = 4096;
constexpr uint64_t kStampRegion = 4 * kMiB;  // all writes land in this window
constexpr size_t kNumWrites = 64;
constexpr int kQueueDepth = 4;
constexpr size_t kFlushEvery = 9;  // a flush barrier every N writes
constexpr uint64_t kStepCap = 20'000'000;

struct PlannedWrite {
  uint64_t vlba;
  uint64_t len;
  bool is_trim = false;  // TRIM op: zeros the range instead of stamping it
};

std::vector<PlannedWrite> MakePlan(uint64_t seed, bool with_trims = false) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  std::vector<PlannedWrite> plan;
  plan.reserve(kNumWrites);
  for (size_t i = 0; i < kNumWrites; i++) {
    const uint64_t len = (1 + rng.Uniform(8)) * kStampBlock;  // 4..32 KiB
    const uint64_t max_block = (kStampRegion - len) / kStampBlock;
    const uint64_t vlba = rng.Uniform(max_block + 1) * kStampBlock;
    // ~1 in 4 ops is a trim (never the first: give it something to punch).
    const bool is_trim = with_trims && i > 0 && rng.Bernoulli(0.25);
    plan.push_back({vlba, len, is_trim});
  }
  return plan;
}

// Fills every 4 KiB block of the write with a 16-byte record (stamp, absolute
// block address) repeated to the end of the block.
Buffer StampPayload(uint64_t stamp, uint64_t vlba, uint64_t len) {
  std::vector<uint8_t> bytes(len);
  for (uint64_t off = 0; off < len; off += kStampBlock) {
    const uint64_t addr = vlba + off;
    for (uint64_t rec = 0; rec < kStampBlock; rec += 16) {
      for (int b = 0; b < 8; b++) {
        bytes[off + rec + static_cast<uint64_t>(b)] =
            static_cast<uint8_t>(stamp >> (8 * b));
        bytes[off + rec + 8 + static_cast<uint64_t>(b)] =
            static_cast<uint8_t>(addr >> (8 * b));
      }
    }
  }
  return Buffer::FromBytes(bytes);
}

// Shadow model: the per-block stamps left behind by replaying the first
// `prefix` writes of the plan over an all-zero volume.
std::vector<uint64_t> ReplayStamps(const std::vector<PlannedWrite>& plan,
                                   size_t prefix) {
  std::vector<uint64_t> stamps(kStampRegion / kStampBlock, 0);
  for (size_t i = 0; i < prefix && i < plan.size(); i++) {
    for (uint64_t off = 0; off < plan[i].len; off += kStampBlock) {
      // A trim returns the block to the never-written (all-zero) state.
      stamps[(plan[i].vlba + off) / kStampBlock] =
          plan[i].is_trim ? 0 : i + 1;
    }
  }
  return stamps;
}

// Parses the recovered image into per-block stamps, failing the test on any
// internally inconsistent block (torn write, wrong address, garbage).
std::vector<uint64_t> ObservedStamps(const std::vector<uint8_t>& image) {
  const size_t blocks = image.size() / kStampBlock;
  std::vector<uint64_t> observed(blocks, 0);
  for (size_t b = 0; b < blocks; b++) {
    const uint8_t* blk = image.data() + b * kStampBlock;
    uint64_t stamp = 0;
    uint64_t addr = 0;
    for (int i = 0; i < 8; i++) {
      stamp |= static_cast<uint64_t>(blk[i]) << (8 * i);
      addr |= static_cast<uint64_t>(blk[8 + i]) << (8 * i);
    }
    if (stamp == 0) {
      // Never-written block: must be all zero.
      for (size_t i = 0; i < kStampBlock; i++) {
        if (blk[i] != 0) {
          ADD_FAILURE() << "block " << b << " partially zero at byte " << i;
          break;
        }
      }
      continue;
    }
    EXPECT_EQ(addr, b * kStampBlock) << "block " << b << " carries a stamp "
                                     << "for a different address";
    for (size_t off = 16; off < kStampBlock; off += 16) {
      if (std::memcmp(blk, blk + off, 16) != 0) {
        ADD_FAILURE() << "block " << b << " is internally torn at offset "
                      << off;
        break;
      }
    }
    observed[b] = stamp;
  }
  return observed;
}

// Closed-loop workload driver: keeps kQueueDepth writes in flight, issues a
// flush barrier every kFlushEvery writes, and records progress.  Held in a
// shared_ptr so callbacks outliving a crash stay safe; `dead` mutes them.
struct Runner {
  LsvdDisk* disk = nullptr;
  std::vector<PlannedWrite> plan;
  size_t next = 0;
  int inflight = 0;
  size_t acked = 0;          // writes acked, in issue order
  size_t write_failures = 0;
  size_t flush_durable = 0;  // acked count covered by a completed flush
  bool dead = false;
};

void Pump(std::shared_ptr<Runner> st) {
  while (!st->dead && st->inflight < kQueueDepth &&
         st->next < st->plan.size()) {
    const size_t i = st->next++;
    const PlannedWrite w = st->plan[i];
    st->inflight++;
    auto on_done = [st](Status s) {
      if (st->dead) {
        return;
      }
      st->inflight--;
      if (s.ok()) {
        st->acked++;
      } else {
        st->write_failures++;
      }
      Pump(st);
    };
    if (w.is_trim) {
      st->disk->Trim(w.vlba, w.len, on_done);
    } else {
      st->disk->Write(w.vlba, StampPayload(i + 1, w.vlba, w.len), on_done);
    }
    if ((i + 1) % kFlushEvery == 0) {
      // Writes acked before the barrier was issued are durable once it
      // completes, even if the SSD later loses power.
      const size_t acked_at_issue = st->acked;
      st->disk->Flush([st, acked_at_issue](Status s) {
        if (st->dead || !s.ok()) {
          return;
        }
        if (acked_at_issue > st->flush_durable) {
          st->flush_durable = acked_at_issue;
        }
      });
    }
  }
}

LsvdConfig TortureConfig() {
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.batch_bytes = 128 * kKiB;  // several backend objects per run
  config.checkpoint_interval_objects = 4;
  // Keep retry backoff tight so faulty runs stay small in simulated time.
  config.retry.initial_backoff = kMillisecond;
  config.retry.max_backoff = 16 * kMillisecond;
  config.retry.degraded_probe_interval = 10 * kMillisecond;
  return config;
}

FaultInjectionConfig TortureFaults(uint64_t seed) {
  FaultInjectionConfig fc;
  fc.seed = seed * 977 + 13;
  fc.put_error_p = 0.10;
  fc.get_error_p = 0.05;
  fc.torn_put_p = 0.02;
  fc.added_latency_min = 0;
  fc.added_latency_max = 2 * kMillisecond;
  return fc;
}

// One seeded workload world.  The same (seed, faults) pair always produces
// the identical event trajectory, which lets a dry run to completion measure
// the total step count so a crash point can be drawn uniformly from it.
struct TortureWorld {
  TestWorld world;
  std::unique_ptr<FaultyObjectStore> faulty;
  std::unique_ptr<LsvdDisk> disk;
  std::shared_ptr<Runner> runner;

  TortureWorld(uint64_t seed, const LsvdConfig& config, bool with_faults,
               bool with_trims = false) {
    ObjectStore* store = &world.store;
    if (with_faults) {
      faulty = std::make_unique<FaultyObjectStore>(&world.store, &world.sim,
                                                   TortureFaults(seed));
      store = faulty.get();
    }
    disk = std::make_unique<LsvdDisk>(&world.host, store, config);
    EXPECT_TRUE(OpenSync(&world.sim, disk.get(), &LsvdDisk::Create).ok());
    runner = std::make_shared<Runner>();
    runner->disk = disk.get();
    runner->plan = MakePlan(seed, with_trims);
    Pump(runner);
  }

  // Steps until the simulator drains (or `limit` steps); returns steps taken.
  uint64_t StepUpTo(uint64_t limit) {
    uint64_t steps = 0;
    while (steps < limit && world.sim.Step()) {
      steps++;
    }
    EXPECT_LT(steps, kStepCap) << "workload failed to quiesce";
    return steps;
  }
};

uint64_t DryRunTotalSteps(uint64_t seed, const LsvdConfig& config,
                          bool with_faults, bool with_trims = false) {
  TortureWorld dry(seed, config, with_faults, with_trims);
  return dry.StepUpTo(kStepCap);
}

std::vector<uint8_t> ReadImage(Simulator* sim, LsvdDisk* disk) {
  auto r = ReadSync(sim, disk, 0, kStampRegion);
  EXPECT_TRUE(r.ok()) << r.status().message();
  if (!r.ok()) {
    return std::vector<uint8_t>(kStampRegion, 0);
  }
  return r->ToBytes();
}

// Checks the prefix-consistency invariant and returns the recovered prefix
// length M (in writes).
size_t CheckPrefixConsistent(const std::vector<PlannedWrite>& plan,
                             const std::vector<uint8_t>& image) {
  const std::vector<uint64_t> observed = ObservedStamps(image);
  uint64_t max_stamp = 0;
  for (uint64_t s : observed) {
    max_stamp = std::max(max_stamp, s);
  }
  EXPECT_LE(max_stamp, plan.size());
  // The recovered prefix length is not directly observable when the plan
  // contains trims (a trailing trim leaves no stamp), so accept the longest
  // prefix P >= max_stamp whose replay matches the image. For trim-free
  // plans only P == max_stamp can match (write P always leaves its stamp),
  // so this is exactly the historical check.
  for (size_t p = plan.size() + 1; p-- > max_stamp;) {
    if (ReplayStamps(plan, p) == observed) {
      return p;
    }
  }
  const std::vector<uint64_t> expected = ReplayStamps(plan, max_stamp);
  ADD_FAILURE() << "image is not a replay of any plan prefix >= "
                << max_stamp;
  for (size_t b = 0; b < observed.size(); b++) {
    if (observed[b] != expected[b]) {
      fprintf(stderr, "block %zu: observed %llu expected %llu\n", b,
              (unsigned long long)observed[b],
              (unsigned long long)expected[b]);
    }
  }
  return max_stamp;
}

// Adaptive group commit (DESIGN.md §12) with deliberately aggressive
// deadlines, so crash windows are full of deadline-sealed partial batches,
// force-started journal records, and coalesced barrier flushes.
LsvdConfig AdaptiveTortureConfig() {
  LsvdConfig config = TortureConfig();
  config.batch_seal_deadline = 500 * kMicrosecond;
  config.journal_flush_coalescing = true;
  config.small_write_fast_path = true;
  return config;
}

enum class CrashMode { kClientOnly, kClientAndPower };

// Runs the workload, crashes at a seed-chosen random step, reopens via
// OpenAfterCrash on the surviving host, and verifies the recovered image.
void TortureAfterCrash(uint64_t seed, bool with_faults, CrashMode mode,
                       const LsvdConfig& config = TortureConfig(),
                       bool with_trims = false) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const uint64_t total =
      DryRunTotalSteps(seed, config, with_faults, with_trims);
  ASSERT_GT(total, 0u);
  Rng crash_rng(seed ^ 0xC4A5481DEAD5EEDull);
  const uint64_t crash_step = crash_rng.UniformRange(1, total + 1);

  TortureWorld t(seed, config, with_faults, with_trims);
  t.StepUpTo(crash_step);
  t.runner->dead = true;
  const DiskRegions regions = t.disk->regions();
  t.disk->Kill();
  if (mode == CrashMode::kClientAndPower) {
    t.world.host.ssd()->PowerFail();
  }
  t.world.sim.Run();  // drain stale in-flight events

  // Recovery talks to the real store: the backend's own transient faults are
  // a workload-phase concern, but torn objects it left behind persist.
  LsvdDisk recovered(&t.world.host, &t.world.store, config, regions);
  const Status open =
      OpenSync(&t.world.sim, &recovered, &LsvdDisk::OpenAfterCrash);
  ASSERT_TRUE(open.ok()) << open.message();

  const std::vector<uint8_t> image = ReadImage(&t.world.sim, &recovered);
  const size_t recovered_prefix =
      CheckPrefixConsistent(t.runner->plan, image);
  const size_t floor = mode == CrashMode::kClientAndPower
                           ? t.runner->flush_durable
                           : t.runner->acked;
  EXPECT_GE(recovered_prefix, floor)
      << "lost acknowledged writes (acked=" << t.runner->acked
      << " flush_durable=" << t.runner->flush_durable << ")";
}

// Same crash, but the write cache is gone: recovery sees only the backend.
// The recovered image must still be a replay of some prefix of the plan.
void TortureCacheLost(uint64_t seed, bool with_faults,
                      const LsvdConfig& config = TortureConfig(),
                      bool with_trims = false) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  const uint64_t total =
      DryRunTotalSteps(seed, config, with_faults, with_trims);
  ASSERT_GT(total, 0u);
  Rng crash_rng(seed ^ 0x10CACE1057ull);
  const uint64_t crash_step = crash_rng.UniformRange(1, total + 1);

  TortureWorld t(seed, config, with_faults, with_trims);
  t.StepUpTo(crash_step);
  t.runner->dead = true;
  t.disk->Kill();
  t.world.sim.Run();

  ClientHost host2(&t.world.sim, TestWorld::InstantHostConfig());
  LsvdDisk recovered(&host2, &t.world.store, config);
  const Status open =
      OpenSync(&t.world.sim, &recovered, &LsvdDisk::OpenCacheLost);
  ASSERT_TRUE(open.ok()) << open.message();

  const std::vector<uint8_t> image = ReadImage(&t.world.sim, &recovered);
  CheckPrefixConsistent(t.runner->plan, image);
}

TEST(RecoveryTortureTest, AfterCrashRecoversAckedWrites) {
  for (uint64_t seed = 1; seed <= 50; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/false, CrashMode::kClientOnly);
  }
}

TEST(RecoveryTortureTest, AfterCrashWithPowerFailure) {
  for (uint64_t seed = 101; seed <= 125; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/false, CrashMode::kClientAndPower);
  }
}

TEST(RecoveryTortureTest, AfterCrashUnderBackendFaults) {
  for (uint64_t seed = 201; seed <= 220; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/true, CrashMode::kClientOnly);
  }
}

TEST(RecoveryTortureTest, CacheLostRecoversConsistentPrefix) {
  for (uint64_t seed = 301; seed <= 350; seed++) {
    TortureCacheLost(seed, /*with_faults=*/false);
  }
}

TEST(RecoveryTortureTest, CacheLostUnderBackendFaults) {
  for (uint64_t seed = 401; seed <= 420; seed++) {
    TortureCacheLost(seed, /*with_faults=*/true);
  }
}

// --- adaptive group commit under crashes (DESIGN.md §12) ---
//
// Same invariants as above, but with deadline sealing, flush coalescing, and
// the small-write fast path all on: acked writes survive a client crash,
// flush-covered writes survive power loss, and a deadline-sealed partial
// batch must never advance the backend sync watermark past journal records
// whose data the backend does not hold (the ReleaseThrough safety edge).

TEST(RecoveryTortureTest, AdaptiveSealAfterCrashRecoversAckedWrites) {
  for (uint64_t seed = 1301; seed <= 1330; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/false, CrashMode::kClientOnly,
                      AdaptiveTortureConfig());
  }
}

TEST(RecoveryTortureTest, AdaptiveSealAfterCrashWithPowerFailure) {
  for (uint64_t seed = 1401; seed <= 1420; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/false, CrashMode::kClientAndPower,
                      AdaptiveTortureConfig());
  }
}

TEST(RecoveryTortureTest, AdaptiveSealAfterCrashUnderBackendFaults) {
  for (uint64_t seed = 1501; seed <= 1515; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/true, CrashMode::kClientOnly,
                      AdaptiveTortureConfig());
  }
}

TEST(RecoveryTortureTest, AdaptiveSealCacheLostRecoversConsistentPrefix) {
  for (uint64_t seed = 1601; seed <= 1625; seed++) {
    TortureCacheLost(seed, /*with_faults=*/false, AdaptiveTortureConfig());
  }
}

// --- sharded backends (DESIGN.md §9) ---
//
// The same harness over a volume striped across N independent object stores,
// each with its own fault injector. The shadow model is unchanged: sharding
// must be invisible to the prefix-consistency contract.

struct ShardedTortureWorld {
  TestWorld world;  // sim + host (its built-in store is unused here)
  std::vector<std::unique_ptr<MemObjectStore>> mems;
  std::vector<std::unique_ptr<FaultyObjectStore>> faulties;
  std::vector<ObjectStore*> workload_stores;  // faulty wrappers (or raw)
  std::vector<ObjectStore*> raw_stores;       // durable contents
  std::unique_ptr<LsvdDisk> disk;
  std::shared_ptr<Runner> runner;

  ShardedTortureWorld(uint64_t seed, const LsvdConfig& config, size_t shards,
                      bool with_faults, bool with_trims = false) {
    for (size_t i = 0; i < shards; i++) {
      mems.push_back(std::make_unique<MemObjectStore>(&world.sim));
      raw_stores.push_back(mems.back().get());
      if (with_faults) {
        // Distinct fault stream per shard.
        faulties.push_back(std::make_unique<FaultyObjectStore>(
            mems.back().get(), &world.sim, TortureFaults(seed + 7919 * i)));
        workload_stores.push_back(faulties.back().get());
      } else {
        workload_stores.push_back(mems.back().get());
      }
    }
    disk = std::make_unique<LsvdDisk>(&world.host, workload_stores, config);
    EXPECT_TRUE(OpenSync(&world.sim, disk.get(), &LsvdDisk::Create).ok());
    runner = std::make_shared<Runner>();
    runner->disk = disk.get();
    runner->plan = MakePlan(seed, with_trims);
    Pump(runner);
  }

  uint64_t StepUpTo(uint64_t limit) {
    uint64_t steps = 0;
    while (steps < limit && world.sim.Step()) {
      steps++;
    }
    EXPECT_LT(steps, kStepCap) << "workload failed to quiesce";
    return steps;
  }

  // Deletes the highest-sequence data object on one shard, simulating a
  // backend that lost the tail of that shard's stream.
  void LoseShardTail(size_t shard) {
    uint64_t max_seq = 0;
    for (const auto& name : mems[shard]->List(DataObjectPrefix("vol"))) {
      if (auto s = ParseDataObjectSeq("vol", name)) {
        max_seq = std::max(max_seq, *s);
      }
    }
    if (max_seq != 0) {
      mems[shard]->Delete(DataObjectName("vol", max_seq), [](Status) {});
      world.sim.Run();
    }
  }
};

uint64_t ShardedDryRunTotalSteps(uint64_t seed, const LsvdConfig& config,
                                 size_t shards, bool with_faults,
                                 bool with_trims = false) {
  ShardedTortureWorld dry(seed, config, shards, with_faults, with_trims);
  return dry.StepUpTo(kStepCap);
}

// Client crash with the cache surviving: OpenAfterCrash on the shard set
// must recover at least every acknowledged write.
void ShardedTortureAfterCrash(
    uint64_t seed, size_t shards, bool with_faults,
    const std::vector<GcPolicyKind>& shard_policy = {},
    bool with_trims = false) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " shards " +
               std::to_string(shards));
  LsvdConfig config = TortureConfig();
  config.gc_shard_policy = shard_policy;
  const uint64_t total =
      ShardedDryRunTotalSteps(seed, config, shards, with_faults, with_trims);
  ASSERT_GT(total, 0u);
  Rng crash_rng(seed ^ 0xC4A5481DEAD5EEDull);
  const uint64_t crash_step = crash_rng.UniformRange(1, total + 1);

  ShardedTortureWorld t(seed, config, shards, with_faults, with_trims);
  t.StepUpTo(crash_step);
  t.runner->dead = true;
  const DiskRegions regions = t.disk->regions();
  t.disk->Kill();
  t.world.sim.Run();

  LsvdDisk recovered(&t.world.host, t.raw_stores, config, regions);
  const Status open =
      OpenSync(&t.world.sim, &recovered, &LsvdDisk::OpenAfterCrash);
  ASSERT_TRUE(open.ok()) << open.message();

  const std::vector<uint8_t> image = ReadImage(&t.world.sim, &recovered);
  const size_t recovered_prefix = CheckPrefixConsistent(t.runner->plan, image);
  EXPECT_GE(recovered_prefix, t.runner->acked)
      << "lost acknowledged writes (acked=" << t.runner->acked << ")";
}

// Cache lost: recovery sees only the shard streams; optionally one shard
// also lost its newest object, which must truncate the recovered prefix at
// the gap, never corrupt it.
void ShardedTortureCacheLost(uint64_t seed, size_t shards, bool with_faults,
                             bool lose_one_tail,
                             const std::vector<GcPolicyKind>& shard_policy = {},
                             bool with_trims = false) {
  SCOPED_TRACE("seed " + std::to_string(seed) + " shards " +
               std::to_string(shards));
  LsvdConfig config = TortureConfig();
  config.gc_shard_policy = shard_policy;
  const uint64_t total =
      ShardedDryRunTotalSteps(seed, config, shards, with_faults, with_trims);
  ASSERT_GT(total, 0u);
  Rng crash_rng(seed ^ 0x10CACE1057ull);
  const uint64_t crash_step = crash_rng.UniformRange(1, total + 1);

  ShardedTortureWorld t(seed, config, shards, with_faults, with_trims);
  t.StepUpTo(crash_step);
  t.runner->dead = true;
  t.disk->Kill();
  t.world.sim.Run();
  if (lose_one_tail) {
    t.LoseShardTail(seed % shards);
  }

  ClientHost host2(&t.world.sim, TestWorld::InstantHostConfig());
  LsvdDisk recovered(&host2, t.raw_stores, config);
  const Status open =
      OpenSync(&t.world.sim, &recovered, &LsvdDisk::OpenCacheLost);
  ASSERT_TRUE(open.ok()) << open.message();

  const std::vector<uint8_t> image = ReadImage(&t.world.sim, &recovered);
  CheckPrefixConsistent(t.runner->plan, image);
}

TEST(ShardedRecoveryTortureTest, AfterCrashRecoversAckedWrites) {
  for (uint64_t seed = 601; seed <= 615; seed++) {
    ShardedTortureAfterCrash(seed, /*shards=*/2, /*with_faults=*/false);
    ShardedTortureAfterCrash(seed, /*shards=*/4, /*with_faults=*/false);
  }
}

TEST(ShardedRecoveryTortureTest, AfterCrashUnderPerShardFaults) {
  for (uint64_t seed = 701; seed <= 710; seed++) {
    ShardedTortureAfterCrash(seed, /*shards=*/4, /*with_faults=*/true);
  }
}

TEST(ShardedRecoveryTortureTest, CacheLostRecoversConsistentPrefix) {
  for (uint64_t seed = 801; seed <= 815; seed++) {
    ShardedTortureCacheLost(seed, /*shards=*/4, /*with_faults=*/false,
                            /*lose_one_tail=*/false);
  }
}

TEST(ShardedRecoveryTortureTest, CacheLostUnderPerShardFaults) {
  for (uint64_t seed = 901; seed <= 910; seed++) {
    ShardedTortureCacheLost(seed, /*shards=*/4, /*with_faults=*/true,
                            /*lose_one_tail=*/false);
  }
}

TEST(ShardedRecoveryTortureTest, CacheLostWithOneShardTailLoss) {
  for (uint64_t seed = 1001; seed <= 1010; seed++) {
    ShardedTortureCacheLost(seed, /*shards=*/2, /*with_faults=*/false,
                            /*lose_one_tail=*/true);
    ShardedTortureCacheLost(seed, /*shards=*/4, /*with_faults=*/true,
                            /*lose_one_tail=*/true);
  }
}

// Mixed per-shard victim-selection policies (docs/GC.md): a non-empty
// gc_shard_policy also turns on the extended GC format (generation-tagged
// v2 data-object headers), so these runs cover crash/recovery with every
// policy collecting — and with v2 headers in the replayed tail.
const std::vector<GcPolicyKind> kMixedShardPolicies = {
    GcPolicyKind::kGreedy, GcPolicyKind::kCostBenefit,
    GcPolicyKind::kAgeBucketed, GcPolicyKind::kCostBenefit};

TEST(ShardedRecoveryTortureTest, AfterCrashWithMixedPerShardPolicies) {
  for (uint64_t seed = 1101; seed <= 1108; seed++) {
    ShardedTortureAfterCrash(seed, /*shards=*/4, /*with_faults=*/false,
                             kMixedShardPolicies);
    ShardedTortureAfterCrash(seed, /*shards=*/4, /*with_faults=*/true,
                             kMixedShardPolicies);
  }
}

TEST(ShardedRecoveryTortureTest, CacheLostWithMixedPerShardPolicies) {
  for (uint64_t seed = 1201; seed <= 1208; seed++) {
    ShardedTortureCacheLost(seed, /*shards=*/4, /*with_faults=*/false,
                            /*lose_one_tail=*/false, kMixedShardPolicies);
    ShardedTortureCacheLost(seed, /*shards=*/4, /*with_faults=*/true,
                            /*lose_one_tail=*/true, kMixedShardPolicies);
  }
}

// --- TRIM under crashes (DESIGN.md §13) ---
//
// The plans mix ~25% trims into the write stream, so crash windows land
// between a trim journal record and the checkpoint that would absorb it, on
// half-applied trim batches, and on replayed trim records. The shadow model
// treats a trim as returning its blocks to the all-zero state; ObservedStamps
// already fails any block that is only partially zero, so a trim can never
// expose stale or torn data.

TEST(TrimRecoveryTortureTest, AfterCrashRecoversAckedOps) {
  for (uint64_t seed = 2001; seed <= 2020; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/false, CrashMode::kClientOnly,
                      TortureConfig(), /*with_trims=*/true);
  }
}

TEST(TrimRecoveryTortureTest, AfterCrashWithPowerFailure) {
  for (uint64_t seed = 2101; seed <= 2115; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/false, CrashMode::kClientAndPower,
                      TortureConfig(), /*with_trims=*/true);
  }
}

TEST(TrimRecoveryTortureTest, AfterCrashUnderBackendFaults) {
  for (uint64_t seed = 2201; seed <= 2210; seed++) {
    TortureAfterCrash(seed, /*with_faults=*/true, CrashMode::kClientOnly,
                      TortureConfig(), /*with_trims=*/true);
  }
}

TEST(TrimRecoveryTortureTest, CacheLostRecoversConsistentPrefix) {
  for (uint64_t seed = 2301; seed <= 2320; seed++) {
    TortureCacheLost(seed, /*with_faults=*/false, TortureConfig(),
                     /*with_trims=*/true);
  }
}

TEST(TrimRecoveryTortureTest, ShardedAfterCrashRecoversAckedOps) {
  for (uint64_t seed = 2401; seed <= 2410; seed++) {
    ShardedTortureAfterCrash(seed, /*shards=*/4, /*with_faults=*/false, {},
                             /*with_trims=*/true);
  }
}

TEST(TrimRecoveryTortureTest, ShardedCacheLostRecoversConsistentPrefix) {
  for (uint64_t seed = 2501; seed <= 2510; seed++) {
    ShardedTortureCacheLost(seed, /*shards=*/4, /*with_faults=*/false,
                            /*lose_one_tail=*/false, {}, /*with_trims=*/true);
    ShardedTortureCacheLost(seed, /*shards=*/2, /*with_faults=*/true,
                            /*lose_one_tail=*/false, {}, /*with_trims=*/true);
  }
}

// Acceptance: a seeded workload against a backend with 10% transient PUT
// failures runs to completion with zero data-integrity errors, and after a
// drain the backend alone reconstructs the full image.
TEST(RecoveryTortureTest, FaultyWorkloadCompletesWithFullIntegrity) {
  for (uint64_t seed = 501; seed <= 505; seed++) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const LsvdConfig config = TortureConfig();
    TortureWorld t(seed, config, /*with_faults=*/true);
    t.StepUpTo(kStepCap);
    EXPECT_EQ(t.runner->acked, t.runner->plan.size());
    EXPECT_EQ(t.runner->write_failures, 0u);

    // The live disk must show exactly the full replay.
    const std::vector<uint8_t> live = ReadImage(&t.world.sim, t.disk.get());
    EXPECT_EQ(ObservedStamps(live),
              ReplayStamps(t.runner->plan, t.runner->plan.size()));

    // After a drain every batch is committed; a cache-lost open against the
    // raw store must reconstruct the same image despite the injected faults.
    ASSERT_TRUE(DrainSync(&t.world.sim, t.disk.get()).ok());
    t.disk->Kill();
    t.world.sim.Run();
    ClientHost host2(&t.world.sim, TestWorld::InstantHostConfig());
    LsvdDisk recovered(&host2, &t.world.store, config);
    ASSERT_TRUE(
        OpenSync(&t.world.sim, &recovered, &LsvdDisk::OpenCacheLost).ok());
    const std::vector<uint8_t> image = ReadImage(&t.world.sim, &recovered);
    EXPECT_EQ(ObservedStamps(image),
              ReplayStamps(t.runner->plan, t.runner->plan.size()));
  }
}

}  // namespace
}  // namespace lsvd
