// Unit tests for the RBD and bcache baselines: functional correctness plus
// the behavioural properties the paper's evaluation depends on (6x write
// amplification, barrier metadata cost, writeback pause, LBA-order
// writeback inconsistency).
#include <gtest/gtest.h>

#include <optional>

#include "src/baseline/bcache_device.h"
#include "src/baseline/rbd_disk.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

Status WriteDisk(Simulator* sim, VirtualDisk* disk, uint64_t off,
                 Buffer data) {
  std::optional<Status> s;
  disk->Write(off, std::move(data), [&](Status st) { s = st; });
  while (!s.has_value() && sim->Step()) {
  }
  return s.value_or(Status::Unavailable("write stalled"));
}

Result<Buffer> ReadDisk(Simulator* sim, VirtualDisk* disk, uint64_t off,
                        uint64_t len) {
  std::optional<Result<Buffer>> r;
  disk->Read(off, len, [&](Result<Buffer> rr) { r = std::move(rr); });
  while (!r.has_value() && sim->Step()) {
  }
  if (!r.has_value()) {
    return Status::Unavailable("read stalled");
  }
  return std::move(*r);
}

class RbdTest : public ::testing::Test {
 protected:
  RbdTest()
      : cluster_(&sim_, ClusterConfig::SsdPool()),
        link_(&sim_, NetParams{}),
        disk_(&sim_, &cluster_, &link_, kGiB, RbdConfig{}) {}

  Simulator sim_;
  BackendCluster cluster_;
  NetLink link_;
  RbdDisk disk_;
};

TEST_F(RbdTest, WriteReadRoundTrip) {
  Buffer data = TestPattern(16 * kKiB, 1);
  ASSERT_TRUE(WriteDisk(&sim_, &disk_, kMiB, data).ok());
  auto r = ReadDisk(&sim_, &disk_, kMiB, 16 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
}

TEST_F(RbdTest, UnwrittenReadsZeros) {
  auto r = ReadDisk(&sim_, &disk_, 0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->IsAllZeros());
}

TEST_F(RbdTest, SixBackendIosPerSmallWrite) {
  ASSERT_TRUE(WriteDisk(&sim_, &disk_, 0, TestPattern(16 * kKiB, 2)).ok());
  sim_.Run();  // let async data writes land
  const DiskStats total = cluster_.TotalStats();
  // 3 WAL appends + 3 data writes = 6 ops (paper Figure 13).
  EXPECT_EQ(total.write_ops, 6u);
  // WAL bytes = (16K + overhead) x3; data = 16K x3.
  EXPECT_EQ(total.write_bytes, 3 * (16 * kKiB + 4 * kKiB) + 3 * 16 * kKiB);
}

TEST_F(RbdTest, WriteSpanningChunksSplits) {
  RbdConfig config;
  const uint64_t boundary = config.chunk_size;
  ASSERT_TRUE(
      WriteDisk(&sim_, &disk_, boundary - 8 * kKiB, TestPattern(16 * kKiB, 3))
          .ok());
  sim_.Run();
  // Two pieces, each replicated 3x with WAL+data: 12 ops.
  EXPECT_EQ(cluster_.TotalStats().write_ops, 12u);
  auto r = ReadDisk(&sim_, &disk_, boundary - 8 * kKiB, 16 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(16 * kKiB, 3));
}

TEST_F(RbdTest, FlushIsImmediate) {
  std::optional<Status> s;
  disk_.Flush([&](Status st) { s = st; });
  sim_.Run();
  EXPECT_TRUE(s->ok());
}

class BcacheTest : public ::testing::Test {
 protected:
  BcacheTest()
      : host_(&sim_, HostConfig()),
        cluster_(&sim_, ClusterConfig::SsdPool()),
        link_(&sim_, NetParams{}),
        rbd_(&sim_, &cluster_, &link_, kGiB, RbdConfig{}),
        bcache_(&host_, &rbd_, *host_.AllocRegion(kCacheSize), kCacheSize,
                BcacheConfig{}) {}

  static ClientHostConfig HostConfig() {
    ClientHostConfig hc;
    hc.ssd_capacity = 2 * kGiB;
    hc.ssd = SsdParams::Instant();
    return hc;
  }

  static constexpr uint64_t kCacheSize = 256 * kMiB;

  Simulator sim_;
  ClientHost host_;
  BackendCluster cluster_;
  NetLink link_;
  RbdDisk rbd_;
  BcacheDevice bcache_;
};

TEST_F(BcacheTest, WriteReadRoundTripFromCache) {
  Buffer data = TestPattern(32 * kKiB, 1);
  ASSERT_TRUE(WriteDisk(&sim_, &bcache_, kMiB, data).ok());
  EXPECT_GT(bcache_.dirty_bytes(), 0u);
  auto r = ReadDisk(&sim_, &bcache_, kMiB, 32 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
  // Backing device saw nothing yet (write-back mode, no idle time elapsed).
  EXPECT_EQ(rbd_.stats().writes, 0u);
}

TEST_F(BcacheTest, ReadMissGoesToBackingAndFillsCache) {
  Buffer data = TestPattern(16 * kKiB, 2);
  ASSERT_TRUE(WriteDisk(&sim_, &rbd_, 0, data).ok());
  sim_.Run();
  auto r = ReadDisk(&sim_, &bcache_, 0, 16 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
  // Second read is a cache hit: no new backing reads.
  const uint64_t backing_reads = rbd_.stats().reads;
  auto r2 = ReadDisk(&sim_, &bcache_, 0, 16 * kKiB);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(rbd_.stats().reads, backing_reads);
  EXPECT_GE(bcache_.stats().read_hits, 1u);
}

TEST_F(BcacheTest, BarrierWritesMetadata) {
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(WriteDisk(&sim_, &bcache_,
                          static_cast<uint64_t>(i) * 4096,
                          TestPattern(4096, 10 + i))
                    .ok());
  }
  std::optional<Status> s;
  bcache_.Flush([&](Status st) { s = st; });
  sim_.RunUntil(sim_.now() + kSecond);
  ASSERT_TRUE(s.has_value() && s->ok());
  // 64 updates / 16 per node = 4 nodes written for the barrier.
  EXPECT_GE(bcache_.stats().barrier_node_writes, 4u);
  EXPECT_GE(host_.ssd()->stats().flushes, 1u);
}

TEST_F(BcacheTest, WritebackRunsWhenIdleAndDrains) {
  Buffer data = TestPattern(64 * kKiB, 3);
  ASSERT_TRUE(WriteDisk(&sim_, &bcache_, 0, data).ok());
  ASSERT_GT(bcache_.dirty_bytes(), 0u);
  // Idle for a while: the writeback timer fires and drains dirty data.
  sim_.RunUntil(sim_.now() + 10 * kSecond);
  sim_.Run();
  EXPECT_EQ(bcache_.dirty_bytes(), 0u);
  EXPECT_GT(rbd_.stats().writes, 0u);
  // Written-back data remains cached (clean) and correct.
  auto r = ReadDisk(&sim_, &bcache_, 0, 64 * kKiB);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
  // And the backing image matches.
  auto br = ReadDisk(&sim_, &rbd_, 0, 64 * kKiB);
  ASSERT_TRUE(br.ok());
  EXPECT_EQ(*br, data);
}

TEST_F(BcacheTest, WritebackPausesUnderLoad) {
  // Keep writing for several writeback intervals; bcache must not write back.
  BcacheConfig config;
  const int rounds = 20;
  for (int i = 0; i < rounds; i++) {
    ASSERT_TRUE(WriteDisk(&sim_, &bcache_,
                          static_cast<uint64_t>(i % 64) * 4096,
                          TestPattern(4096, 100 + i))
                    .ok());
    sim_.RunUntil(sim_.now() + config.writeback_interval / 2);
  }
  EXPECT_EQ(bcache_.stats().writeback_ops, 0u);
  EXPECT_EQ(rbd_.stats().writes, 0u);
}

TEST_F(BcacheTest, WritebackAllSynchronizesBackingImage) {
  Rng rng(5);
  std::map<uint64_t, uint64_t> content;
  for (int i = 0; i < 30; i++) {
    const uint64_t vlba = rng.Uniform(256) * 4096;
    const uint64_t seed = 600 + static_cast<uint64_t>(i);
    ASSERT_TRUE(WriteDisk(&sim_, &bcache_, vlba, TestPattern(4096, seed)).ok());
    content[vlba] = seed;
  }
  bool done = false;
  bcache_.WritebackAll([&] { done = true; });
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(bcache_.dirty_bytes(), 0u);
  for (const auto& [vlba, seed] : content) {
    auto r = ReadDisk(&sim_, &rbd_, vlba, 4096);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, TestPattern(4096, seed));
  }
}

TEST_F(BcacheTest, StallsWhenCacheFullThenRecovers) {
  // A cache-sized burst of writes must eventually stall and then complete
  // via forced writeback.
  const uint64_t chunk = 4 * kMiB;
  const int n = static_cast<int>(kCacheSize / chunk) + 8;
  int acked = 0;
  for (int i = 0; i < n; i++) {
    bcache_.Write(static_cast<uint64_t>(i) * chunk % kGiB, Buffer::Zeros(chunk),
                  [&](Status s) {
                    ASSERT_TRUE(s.ok());
                    acked++;
                  });
  }
  sim_.RunUntil(sim_.now() + 300 * kSecond);
  sim_.Run();
  EXPECT_EQ(acked, n);
  EXPECT_GT(bcache_.stats().stalled_writes, 0u);
  EXPECT_GT(bcache_.stats().writeback_bytes, 0u);
}

TEST_F(BcacheTest, LbaOrderWritebackBreaksTemporalOrder) {
  // Write high LBA first, then low LBA; one forced round writes the LOW
  // address first — the backing image can hold the later write without the
  // earlier one, the inconsistency Table 4 exploits.
  ASSERT_TRUE(WriteDisk(&sim_, &bcache_, 512 * kMiB, TestPattern(4096, 1)).ok());
  ASSERT_TRUE(WriteDisk(&sim_, &bcache_, 0, TestPattern(4096, 2)).ok());

  // One small writeback round (cursor at 0 => LBA order).
  BcacheConfig config;
  bool round_done = false;
  // Direct one-piece round via WritebackAll with a byte budget is not
  // exposed; emulate idleness for exactly one interval with a tiny batch by
  // observing which write lands first.
  bcache_.WritebackAll([&] { round_done = true; });
  sim_.Run();
  ASSERT_TRUE(round_done);
  // Both landed eventually; verify the backing now matches (sanity), and
  // that the writeback order was by LBA: RBD stats can't show order, so
  // check the cursor-based selection produced ascending first-op: the low
  // LBA write is the first writeback op recorded.
  EXPECT_EQ(bcache_.stats().writeback_ops, 2u);
  auto r = ReadDisk(&sim_, &rbd_, 0, 4096);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, TestPattern(4096, 2));
}

}  // namespace
}  // namespace lsvd
