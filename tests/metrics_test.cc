// Unit tests for the metrics registry: registration semantics, snapshot /
// diff arithmetic, and the JSON export (validated with a minimal parser so
// the output is known to be machine-readable, not just string-shaped).
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/metrics.h"

namespace lsvd {
namespace {

// --- minimal JSON parser (objects, arrays, strings, numbers) ---
//
// Just enough grammar to round-trip MetricsSnapshot::ToJson(); anything the
// exporter emits that this rejects is a bug in the exporter.

struct JsonValue {
  enum class Type { kNumber, kString, kObject, kArray };
  Type type = Type::kNumber;
  double number = 0.0;
  std::string string;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;

  const JsonValue* Get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    pos_ = 0;
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(text_[pos_]) != 0) {
      pos_++;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        pos_++;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      out->push_back(text_[pos_++]);
    }
    return pos_ < text_.size() && text_[pos_++] == '"';
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      pos_++;
      out->type = JsonValue::Type::kObject;
      SkipSpace();
      if (Consume('}')) {
        return true;
      }
      while (true) {
        std::string key;
        JsonValue value;
        if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
          return false;
        }
        out->object.emplace(std::move(key), std::move(value));
        if (Consume('}')) {
          return true;
        }
        if (!Consume(',')) {
          return false;
        }
      }
    }
    if (c == '[') {
      pos_++;
      out->type = JsonValue::Type::kArray;
      SkipSpace();
      if (Consume(']')) {
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->array.push_back(std::move(value));
        if (Consume(']')) {
          return true;
        }
        if (!Consume(',')) {
          return false;
        }
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    // Number.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(text_[pos_]) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      pos_++;
    }
    if (pos_ == start) {
      return false;
    }
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- registration ---

TEST(MetricsRegistry, GetOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a.ops");
  Counter* c2 = reg.GetCounter("a.ops");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("a.lat_us");
  Histogram* h2 = reg.GetHistogram("a.lat_us");
  EXPECT_EQ(h1, h2);
  Gauge* g1 = reg.GetGauge("a.depth");
  EXPECT_EQ(g1, reg.GetGauge("a.depth"));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, CounterGaugeHistogramFlowIntoSnapshot) {
  MetricsRegistry reg;
  reg.GetCounter("writes")->Inc();
  reg.GetCounter("writes")->Inc(41);
  reg.GetGauge("depth")->Set(3.5);
  reg.GetHistogram("lat_us")->Add(100);
  reg.GetHistogram("lat_us")->Add(200);

  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("writes"), 42u);
  const MetricsSnapshot::Entry* depth = snap.Find("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->kind, MetricsSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(depth->value, 3.5);
  const MetricsSnapshot::Entry* lat = snap.Find("lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_NEAR(lat->Mean(), 150.0, 1e-9);
  EXPECT_GT(snap.Percentile("lat_us", 0.5), 0.0);
  // Absent / wrong-kind lookups are harmless zeros.
  EXPECT_EQ(snap.CounterValue("no.such"), 0u);
  EXPECT_EQ(snap.Percentile("depth", 0.5), 0.0);
}

TEST(MetricsRegistry, FineGrainedHistogramResolutionSurvivesSnapshot) {
  MetricsRegistry reg;
  // Pre-creation wins: a bench creates the fine-grained histogram first and
  // a later default-geometry GetHistogram resolves the same instance.
  Histogram* h = reg.GetHistogram("lat_us", /*sub_bits=*/6);
  EXPECT_EQ(reg.GetHistogram("lat_us"), h);
  EXPECT_EQ(h->sub_bits(), 6);
  for (int i = 0; i < 1000; i++) {
    h->Add(100000);
  }
  // The snapshot re-derives bucket bounds from sub_bits, so percentiles keep
  // the 2^-6 relative resolution instead of collapsing to octave bounds.
  const double p999 = reg.Snapshot().Percentile("lat_us", 0.999);
  EXPECT_NEAR(p999, 100000.0, 100000.0 / 64 + 1e-9);
  EXPECT_DOUBLE_EQ(p999, h->Percentile(0.999));
}

TEST(MetricsRegistry, CallbackGaugesSampleAtSnapshotTime) {
  MetricsRegistry reg;
  double live = 1.0;
  reg.RegisterCallback("util", [&live] { return live; });
  EXPECT_DOUBLE_EQ(reg.Snapshot().Find("util")->value, 1.0);
  live = 0.25;
  EXPECT_DOUBLE_EQ(reg.Snapshot().Find("util")->value, 0.25);
  // Re-registration replaces the callback (components sharing a registry).
  reg.RegisterCallback("util", [] { return 9.0; });
  EXPECT_DOUBLE_EQ(reg.Snapshot().Find("util")->value, 9.0);
  EXPECT_EQ(reg.size(), 1u);
}

// --- snapshot diff ---

TEST(MetricsSnapshot, DiffSubtractsCountersAndHistograms) {
  MetricsRegistry reg;
  Counter* ops = reg.GetCounter("ops");
  Histogram* lat = reg.GetHistogram("lat_us");
  Gauge* depth = reg.GetGauge("depth");

  ops->Inc(10);
  lat->Add(100);
  depth->Set(1.0);
  const MetricsSnapshot before = reg.Snapshot();

  ops->Inc(5);
  lat->Add(100);
  lat->Add(3000);
  depth->Set(7.0);
  const MetricsSnapshot diff = reg.Snapshot().DiffSince(before);

  EXPECT_EQ(diff.CounterValue("ops"), 5u);  // only the interval
  const MetricsSnapshot::Entry* dlat = diff.Find("lat_us");
  ASSERT_NE(dlat, nullptr);
  EXPECT_EQ(dlat->count, 2u);
  EXPECT_NEAR(dlat->value_sum, 3100.0, 1e-9);
  // Gauges are instantaneous: the diff keeps the newer value.
  EXPECT_DOUBLE_EQ(diff.Find("depth")->value, 7.0);
  // Entries absent from the baseline pass through unchanged.
  MetricsSnapshot empty;
  EXPECT_EQ(reg.Snapshot().DiffSince(empty).CounterValue("ops"), 15u);
}

TEST(MetricsSnapshot, DiffBucketsSubtractPerBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h");
  h->Add(10, 7);  // bucket 3
  const MetricsSnapshot before = reg.Snapshot();
  h->Add(10, 5);
  h->Add(1000, 2);  // bucket 9
  const MetricsSnapshot diff = reg.Snapshot().DiffSince(before);
  const MetricsSnapshot::Entry* e = diff.Find("h");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->buckets[3].first, 1u);   // one new sample in [8, 16)
  EXPECT_EQ(e->buckets[3].second, 5u);  // its weight
  EXPECT_EQ(e->buckets[9].first, 1u);
  EXPECT_EQ(e->weight, 7u);  // 5 + 2 new weight
}

// --- JSON export ---

TEST(MetricsSnapshot, JsonRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.GetCounter("lsvd.writes")->Inc(1234);
  reg.GetGauge("backend.utilization")->Set(0.625);
  Histogram* h = reg.GetHistogram("lsvd.write.ack_us");
  for (int i = 0; i < 100; i++) {
    h->Add(300);
  }
  h->Add(9000);

  const std::string json = reg.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos) << "must be single-line";

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_EQ(root.object.size(), 3u);

  const JsonValue* writes = root.Get("lsvd.writes");
  ASSERT_NE(writes, nullptr);
  EXPECT_DOUBLE_EQ(writes->number, 1234.0);

  const JsonValue* util = root.Get("backend.utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_DOUBLE_EQ(util->number, 0.625);

  const JsonValue* ack = root.Get("lsvd.write.ack_us");
  ASSERT_NE(ack, nullptr);
  ASSERT_EQ(ack->type, JsonValue::Type::kObject);
  EXPECT_DOUBLE_EQ(ack->Get("count")->number, 101.0);
  // p50 falls in the 300 us bucket [256, 512); p99 stays below the 9000 us
  // bucket's upper edge.
  EXPECT_GE(ack->Get("p50")->number, 256.0);
  EXPECT_LT(ack->Get("p50")->number, 512.0);
  EXPECT_LE(ack->Get("p99")->number, 16384.0);
  // Buckets export as [lower, count, weight] triples, empty buckets skipped.
  const JsonValue* buckets = ack->Get("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->array.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->array[0].array[0].number, 256.0);
  EXPECT_DOUBLE_EQ(buckets->array[0].array[1].number, 100.0);
  EXPECT_DOUBLE_EQ(buckets->array[1].array[0].number, 8192.0);
}

TEST(MetricsSnapshot, JsonSnapshotSurvivesRegistryDeath) {
  MetricsSnapshot snap;
  {
    MetricsRegistry reg;
    reg.GetCounter("c")->Inc(3);
    double x = 1.5;
    reg.RegisterCallback("cb", [&x] { return x; });
    snap = reg.Snapshot();
  }
  // The snapshot is plain data: usable after the registry (and the callback's
  // captures) are gone.
  EXPECT_EQ(snap.CounterValue("c"), 3u);
  EXPECT_DOUBLE_EQ(snap.Find("cb")->value, 1.5);
  JsonValue root;
  ASSERT_TRUE(JsonParser(snap.ToJson()).Parse(&root));
}

TEST(MetricsSnapshot, TableListsEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("a.very.long.metric.name.for.alignment")->Inc(7);
  reg.GetCounter("b")->Inc(9);
  reg.GetHistogram("lat")->Add(50);
  const std::string table = reg.ToTable();
  EXPECT_NE(table.find("a.very.long.metric.name.for.alignment"),
            std::string::npos);
  EXPECT_NE(table.find("b"), std::string::npos);
  EXPECT_NE(table.find("count=1"), std::string::npos);
}

// --- callback lifetime ---

TEST(MetricsRegistry, UnregisterCallbackFreezesLastValue) {
  MetricsRegistry reg;
  double v = 42.0;
  reg.RegisterCallback("g", [&] { return v; });
  EXPECT_EQ(reg.Snapshot().Find("g")->value, 42.0);
  reg.UnregisterCallback("g");
  v = 99.0;  // no longer sampled
  EXPECT_EQ(reg.Snapshot().Find("g")->value, 42.0);
  reg.UnregisterCallback("g");        // idempotent
  reg.UnregisterCallback("missing");  // unknown name: no-op
}

TEST(MetricsRegistry, CallbackGuardUnregistersOnDestruction) {
  MetricsRegistry reg;
  {
    struct Component {
      double state = 7.0;
      CallbackGuard guard;
    } comp;
    comp.guard.Register(&reg, "comp.state", [&comp] { return comp.state; });
    EXPECT_EQ(reg.Snapshot().Find("comp.state")->value, 7.0);
  }
  // The component is gone; snapshotting must not touch it (this is how a
  // detached volume's gauges behave on the shared host registry).
  EXPECT_EQ(reg.Snapshot().Find("comp.state")->value, 7.0);
}

// --- RecordLatencyUs ---

TEST(RecordLatencyUs, ConvertsAndGuards) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat_us");
  RecordLatencyUs(h, 5000);  // 5 us
  EXPECT_EQ(h->total_count(), 1u);
  EXPECT_EQ(h->BucketCount(2), 1u);  // 5 lands in [4, 8)
  RecordLatencyUs(h, -1);            // negative interval: dropped
  RecordLatencyUs(nullptr, 5000);    // null histogram: no-op
  EXPECT_EQ(h->total_count(), 1u);
}

}  // namespace
}  // namespace lsvd
