// Unit tests for the object stores: semantics (immutability, range reads,
// listing), timing, backend amplification patterns, and crash behaviour.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "src/objstore/mem_object_store.h"
#include "src/objstore/sim_object_store.h"
#include "src/sim/simulator.h"

namespace lsvd {
namespace {

Status PutSync(Simulator* sim, ObjectStore* store, const std::string& name,
               Buffer data) {
  std::optional<Status> result;
  store->Put(name, std::move(data), [&](Status s) { result = s; });
  sim->Run();
  return result.value_or(Status::Unavailable("no ack"));
}

Result<Buffer> GetSync(Simulator* sim, ObjectStore* store,
                       const std::string& name) {
  std::optional<Result<Buffer>> result;
  store->Get(name, [&](Result<Buffer> r) { result = std::move(r); });
  sim->Run();
  return std::move(*result);
}

class ObjStoreSemantics : public ::testing::TestWithParam<bool> {
 protected:
  ObjStoreSemantics() {
    if (GetParam()) {
      cluster_ = std::make_unique<BackendCluster>(&sim_,
                                                  ClusterConfig::SsdPool());
      link_ = std::make_unique<NetLink>(&sim_, NetParams{});
      store_ = std::make_unique<SimObjectStore>(&sim_, cluster_.get(),
                                                link_.get(),
                                                SimObjectStoreConfig{});
    } else {
      store_ = std::make_unique<MemObjectStore>(&sim_);
    }
  }

  Simulator sim_;
  std::unique_ptr<BackendCluster> cluster_;
  std::unique_ptr<NetLink> link_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_P(ObjStoreSemantics, PutGetRoundTrips) {
  Buffer data = Buffer::FromString("backend object body");
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "vol.00000001", data).ok());
  auto r = GetSync(&sim_, store_.get(), "vol.00000001");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, data);
}

TEST_P(ObjStoreSemantics, GetMissingIsNotFound) {
  auto r = GetSync(&sim_, store_.get(), "nope");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_P(ObjStoreSemantics, ObjectsAreImmutable) {
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "a", Buffer::Zeros(4096)).ok());
  EXPECT_EQ(PutSync(&sim_, store_.get(), "a", Buffer::Zeros(4096)).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(ObjStoreSemantics, RangeReads) {
  Buffer data;
  std::vector<uint8_t> bytes(100);
  for (size_t i = 0; i < bytes.size(); i++) {
    bytes[i] = static_cast<uint8_t>(i);
  }
  data.AppendBytes(bytes);
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "obj", data).ok());

  std::optional<Result<Buffer>> result;
  store_->GetRange("obj", 10, 20,
                   [&](Result<Buffer> r) { result = std::move(r); });
  sim_.Run();
  ASSERT_TRUE(result->ok());
  auto got = result->value().ToBytes();
  ASSERT_EQ(got.size(), 20u);
  EXPECT_EQ(got[0], 10);
  EXPECT_EQ(got[19], 29);

  // Out-of-range is rejected.
  result.reset();
  store_->GetRange("obj", 90, 20,
                   [&](Result<Buffer> r) { result = std::move(r); });
  sim_.Run();
  EXPECT_EQ(result->status().code(), StatusCode::kOutOfRange);
}

TEST_P(ObjStoreSemantics, ListByPrefixSorted) {
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "v.003", Buffer::Zeros(1)).ok());
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "v.001", Buffer::Zeros(1)).ok());
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "w.002", Buffer::Zeros(1)).ok());
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "v.002", Buffer::Zeros(1)).ok());
  const auto names = store_->List("v.");
  EXPECT_EQ(names, (std::vector<std::string>{"v.001", "v.002", "v.003"}));
}

TEST_P(ObjStoreSemantics, DeleteRemoves) {
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "gone", Buffer::Zeros(1)).ok());
  std::optional<Status> del;
  store_->Delete("gone", [&](Status s) { del = s; });
  sim_.Run();
  ASSERT_TRUE(del->ok());
  EXPECT_EQ(GetSync(&sim_, store_.get(), "gone").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store_->Head("gone").status().code(), StatusCode::kNotFound);
}

TEST_P(ObjStoreSemantics, HeadReportsSize) {
  ASSERT_TRUE(PutSync(&sim_, store_.get(), "sized", Buffer::Zeros(12345)).ok());
  auto h = store_->Head("sized");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(*h, 12345u);
}

INSTANTIATE_TEST_SUITE_P(MemAndSim, ObjStoreSemantics, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "SimStore" : "MemStore";
                         });

TEST(MemObjectStore, DropNextPutsStrandsObjects) {
  Simulator sim;
  MemObjectStore store(&sim);
  store.DropNextPuts(1);
  bool acked = false;
  store.Put("lost", Buffer::Zeros(1), [&](Status) { acked = true; });
  sim.Run();
  EXPECT_FALSE(acked);
  EXPECT_EQ(store.object_count(), 0u);
  // Subsequent puts work again.
  ASSERT_TRUE(PutSync(&sim, &store, "kept", Buffer::Zeros(1)).ok());
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(SimObjectStore, ErasureCodedPutWritesSixChunksPlusMetadata) {
  Simulator sim;
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStoreConfig config;
  SimObjectStore store(&sim, &cluster, &link, config);

  ASSERT_TRUE(PutSync(&sim, &store, "obj", Buffer::Zeros(4 * kMiB)).ok());
  const DiskStats total = cluster.TotalStats();
  // 6 chunk writes of ~1 MiB plus 16 metadata writes of 4 KiB.
  EXPECT_EQ(total.write_ops, 6u + config.metadata_writes_per_stripe);
  EXPECT_NEAR(static_cast<double>(total.write_bytes),
              6.0 * kMiB + config.metadata_writes_per_stripe * 4096.0,
              64.0 * kKiB);
}

TEST(SimObjectStore, ReplicatedPutWritesThreeCopies) {
  Simulator sim;
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStoreConfig config;
  config.placement = SimObjectStoreConfig::Placement::kReplicated3;
  SimObjectStore store(&sim, &cluster, &link, config);

  ASSERT_TRUE(PutSync(&sim, &store, "obj", Buffer::Zeros(4 * kMiB)).ok());
  const DiskStats total = cluster.TotalStats();
  EXPECT_EQ(total.write_ops, 3u + config.metadata_writes_per_stripe);
  EXPECT_NEAR(static_cast<double>(total.write_bytes),
              3.0 * 4 * kMiB + config.metadata_writes_per_stripe * 4096.0,
              64.0 * kKiB);
}

TEST(SimObjectStore, MultiStripePut) {
  Simulator sim;
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStoreConfig config;
  SimObjectStore store(&sim, &cluster, &link, config);

  // 9 MiB = 3 stripes (4 + 4 + 1 MiB).
  ASSERT_TRUE(PutSync(&sim, &store, "big", Buffer::Zeros(9 * kMiB)).ok());
  const DiskStats total = cluster.TotalStats();
  EXPECT_EQ(total.write_ops, 3 * (6u + config.metadata_writes_per_stripe));
}

TEST(SimObjectStore, ClientCrashAbandonsInFlightPut) {
  Simulator sim;
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  bool acked = false;
  store.Put("inflight", Buffer::Zeros(4 * kMiB), [&](Status) { acked = true; });
  // Crash immediately: the body never finishes crossing the link.
  store.ClientCrash();
  sim.Run();
  EXPECT_FALSE(acked);
  EXPECT_EQ(store.List("").size(), 0u);
}

TEST(SimObjectStore, ClientCrashAfterBackendCommitKeepsObject) {
  Simulator sim;
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  bool acked = false;
  store.Put("committed", Buffer::Zeros(4 * kMiB),
            [&](Status) { acked = true; });
  // Run until the object is visible (backend writes finished), then crash
  // before the ack is delivered.
  while (store.List("").empty() && sim.Step()) {
  }
  ASSERT_EQ(store.List("").size(), 1u);
  EXPECT_FALSE(acked);
  store.ClientCrash();
  sim.Run();
  EXPECT_FALSE(acked);  // ack was dropped
  EXPECT_EQ(store.List("").size(), 1u);  // but the object survives
}

TEST(SimObjectStore, StatsTrackTraffic) {
  Simulator sim;
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  ASSERT_TRUE(PutSync(&sim, &store, "a", Buffer::Zeros(kMiB)).ok());
  auto r = GetSync(&sim, &store, "a");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(store.stats().puts, 1u);
  EXPECT_EQ(store.stats().put_bytes, kMiB);
  EXPECT_EQ(store.stats().gets, 1u);
  EXPECT_EQ(store.stats().get_bytes, kMiB);
}

}  // namespace
}  // namespace lsvd
