// CRC32C correctness: known vectors, incremental/extend semantics, and —
// the property the hot-path overhaul depends on — byte-identical results
// from the hardware (SSE4.2 / ARMv8) and software (slicing-by-8) paths
// across random lengths, alignments, and contents.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/util/crc32c.h"
#include "src/util/rng.h"

namespace lsvd {
namespace {

uint32_t CrcOfString(const std::string& s) {
  return Crc32c(s.data(), s.size());
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / standard CRC32C check values.
  EXPECT_EQ(CrcOfString(""), 0x00000000u);
  EXPECT_EQ(CrcOfString("123456789"), 0xE3069283u);
  EXPECT_EQ(CrcOfString("a"), 0xC1D04330u);
  EXPECT_EQ(CrcOfString("abc"), 0x364B3FB7u);
  EXPECT_EQ(CrcOfString("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
  // 32 bytes of zeros (iSCSI test vector).
  const std::string zeros(32, '\0');
  EXPECT_EQ(CrcOfString(zeros), 0x8A9136AAu);
  // 32 bytes of 0xFF.
  const std::string ffs(32, '\xff');
  EXPECT_EQ(CrcOfString(ffs), 0x62A8AB43u);
}

TEST(Crc32c, ExtendComposesLikeOneShot) {
  Rng rng(7);
  std::vector<uint8_t> data(1 << 16);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  // Any split point must give the same result via Extend.
  for (const size_t cut : {size_t{0}, size_t{1}, size_t{7}, size_t{4096},
                           data.size() - 3, data.size()}) {
    uint32_t crc = Crc32cExtend(0, data.data(), cut);
    crc = Crc32cExtend(crc, data.data() + cut, data.size() - cut);
    EXPECT_EQ(crc, whole) << "cut=" << cut;
  }
}

TEST(Crc32c, ImplNameIsReported) {
  const std::string name = Crc32cImplName();
  EXPECT_TRUE(name == "sse4.2" || name == "armv8" || name == "software")
      << name;
}

TEST(Crc32c, HardwareMatchesSoftwareExhaustiveSmall) {
  const auto hw = internal::Crc32cHardwareImpl();
  if (hw == nullptr) {
    GTEST_SKIP() << "no hardware CRC32C on this machine";
  }
  // Every length 0..64 at every alignment 0..8, patterned data.
  std::vector<uint8_t> buf(128);
  for (size_t i = 0; i < buf.size(); i++) {
    buf[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  for (size_t align = 0; align <= 8; align++) {
    for (size_t len = 0; len + align <= 96; len++) {
      const uint32_t sw =
          internal::Crc32cExtendSoftware(0, buf.data() + align, len);
      const uint32_t hwv = hw(0, buf.data() + align, len);
      ASSERT_EQ(sw, hwv) << "align=" << align << " len=" << len;
    }
  }
}

TEST(Crc32c, HardwareMatchesSoftwareRandomized) {
  const auto hw = internal::Crc32cHardwareImpl();
  if (hw == nullptr) {
    GTEST_SKIP() << "no hardware CRC32C on this machine";
  }
  for (uint64_t seed = 1; seed <= 8; seed++) {
    Rng rng(seed);
    std::vector<uint8_t> buf(1 << 20);
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.Next());
    }
    for (int trial = 0; trial < 200; trial++) {
      const size_t len = rng.Uniform(buf.size());
      const size_t off = rng.Uniform(buf.size() - len + 1);
      const uint32_t seed_crc = static_cast<uint32_t>(rng.Next());
      ASSERT_EQ(internal::Crc32cExtendSoftware(seed_crc, buf.data() + off, len),
                hw(seed_crc, buf.data() + off, len))
          << "seed=" << seed << " trial=" << trial << " off=" << off
          << " len=" << len;
    }
  }
}

TEST(Crc32c, ExtendZerosMatchesByteLoop) {
  // The O(log n) algebraic zero-extension must agree exactly with feeding
  // real zero bytes through the byte engine, from any starting state.
  std::vector<uint8_t> zeros(1 << 16, 0);
  Rng rng(42);
  for (const uint64_t n :
       {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{7}, uint64_t{8},
        uint64_t{255}, uint64_t{256}, uint64_t{4096}, uint64_t{4097},
        uint64_t{65536}}) {
    for (int trial = 0; trial < 8; trial++) {
      const uint32_t start = trial == 0 ? 0 : static_cast<uint32_t>(rng.Next());
      ASSERT_EQ(Crc32cExtendZeros(start, n),
                internal::Crc32cExtendSoftware(start, zeros.data(), n))
          << "n=" << n << " start=" << start;
    }
  }
  // Random lengths, and composition: zeros then data == data after zeros fed
  // as bytes.
  std::vector<uint8_t> tail(64);
  for (auto& b : tail) {
    b = static_cast<uint8_t>(rng.Next());
  }
  for (int trial = 0; trial < 100; trial++) {
    const uint64_t n = rng.Uniform(zeros.size() + 1);
    const uint32_t start = static_cast<uint32_t>(rng.Next());
    const uint32_t algebraic = Crc32cExtendZeros(start, n);
    const uint32_t byte_loop =
        internal::Crc32cExtendSoftware(start, zeros.data(), n);
    ASSERT_EQ(algebraic, byte_loop) << "n=" << n;
    ASSERT_EQ(Crc32cExtend(algebraic, tail.data(), tail.size()),
              Crc32cExtend(byte_loop, tail.data(), tail.size()));
  }
  // Huge lengths stay O(log n): just check determinism and a couple of
  // reference identities (extending by a+b zeros == extending twice).
  const uint32_t big = Crc32cExtendZeros(0xDEADBEEF, uint64_t{1} << 40);
  EXPECT_EQ(big, Crc32cExtendZeros(
                     Crc32cExtendZeros(0xDEADBEEF, uint64_t{1} << 39),
                     uint64_t{1} << 39));
}

TEST(Crc32c, DispatchedImplMatchesSoftware) {
  // Whatever Crc32cExtend dispatched to must agree with the reference.
  Rng rng(99);
  std::vector<uint8_t> buf(65536);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng.Next());
  }
  for (int trial = 0; trial < 50; trial++) {
    const size_t len = rng.Uniform(buf.size());
    const size_t off = rng.Uniform(buf.size() - len + 1);
    ASSERT_EQ(Crc32cExtend(1234, buf.data() + off, len),
              internal::Crc32cExtendSoftware(1234, buf.data() + off, len));
  }
}

}  // namespace
}  // namespace lsvd
