// Migration/failover torture (docs/FLEET.md failure-mode table): crash the
// source host mid-drain, crash the target mid-recover-attach, and race a
// lease-expiry failover against a live migration on a partitioned host —
// each swept over crash points and verified against a shadow model with the
// prefix-consistency rule of §3.3 (recovery may lose a tail of the write
// history, never the middle). Plus clone fan-out determinism: the same seed
// must produce an identical fleet metric dump.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fleet/fleet.h"
#include "tests/lsvd_test_util.h"

namespace lsvd {
namespace {

constexpr uint64_t kStampBlock = 4096;
constexpr uint64_t kStampRegion = 2 * kMiB;  // all writes land here
constexpr size_t kDrainedWrites = 12;        // durable floor (drained)
constexpr size_t kTailWrites = 12;           // in-cache tail at crash time
constexpr uint64_t kStepCap = 30'000'000;

struct PlannedWrite {
  uint64_t vlba;
  uint64_t len;
};

std::vector<PlannedWrite> MakePlan(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 17);
  std::vector<PlannedWrite> plan;
  for (size_t i = 0; i < kDrainedWrites + kTailWrites; i++) {
    const uint64_t len = (1 + rng.Uniform(4)) * kStampBlock;  // 4..16 KiB
    const uint64_t max_block = (kStampRegion - len) / kStampBlock;
    plan.push_back({rng.Uniform(max_block + 1) * kStampBlock, len});
  }
  return plan;
}

// Every 4 KiB block carries (stamp, absolute address) repeated to the end of
// the block, so torn or misdirected recovery is detectable per block.
Buffer StampPayload(uint64_t stamp, uint64_t vlba, uint64_t len) {
  std::vector<uint8_t> bytes(len);
  for (uint64_t off = 0; off < len; off += kStampBlock) {
    const uint64_t addr = vlba + off;
    for (uint64_t rec = 0; rec < kStampBlock; rec += 16) {
      for (int b = 0; b < 8; b++) {
        bytes[off + rec + static_cast<uint64_t>(b)] =
            static_cast<uint8_t>(stamp >> (8 * b));
        bytes[off + rec + 8 + static_cast<uint64_t>(b)] =
            static_cast<uint8_t>(addr >> (8 * b));
      }
    }
  }
  return Buffer::FromBytes(bytes);
}

// Shadow model: per-block stamps after replaying the first `prefix` writes.
std::vector<uint64_t> ReplayStamps(const std::vector<PlannedWrite>& plan,
                                   size_t prefix) {
  std::vector<uint64_t> stamps(kStampRegion / kStampBlock, 0);
  for (size_t i = 0; i < prefix && i < plan.size(); i++) {
    for (uint64_t off = 0; off < plan[i].len; off += kStampBlock) {
      stamps[(plan[i].vlba + off) / kStampBlock] = i + 1;
    }
  }
  return stamps;
}

// Parses a recovered image into per-block stamps, failing on any internally
// inconsistent block.
std::vector<uint64_t> ObservedStamps(const std::vector<uint8_t>& image) {
  const size_t blocks = image.size() / kStampBlock;
  std::vector<uint64_t> observed(blocks, 0);
  for (size_t b = 0; b < blocks; b++) {
    const uint8_t* blk = image.data() + b * kStampBlock;
    uint64_t stamp = 0;
    uint64_t addr = 0;
    for (int i = 0; i < 8; i++) {
      stamp |= static_cast<uint64_t>(blk[i]) << (8 * i);
      addr |= static_cast<uint64_t>(blk[8 + i]) << (8 * i);
    }
    if (stamp == 0) {
      for (size_t i = 0; i < kStampBlock; i++) {
        if (blk[i] != 0) {
          ADD_FAILURE() << "block " << b << " partially zero at byte " << i;
          break;
        }
      }
      continue;
    }
    EXPECT_EQ(addr, b * kStampBlock) << "block " << b << " misdirected";
    for (size_t off = 16; off < kStampBlock; off += 16) {
      if (std::memcmp(blk, blk + off, 16) != 0) {
        ADD_FAILURE() << "block " << b << " torn at offset " << off;
        break;
      }
    }
    observed[b] = stamp;
  }
  return observed;
}

std::vector<uint8_t> ReadImage(Simulator* sim, LsvdDisk* disk) {
  std::vector<uint8_t> image;
  image.reserve(kStampRegion);
  for (uint64_t off = 0; off < kStampRegion; off += 512 * kKiB) {
    auto r = ReadSync(sim, disk, off, 512 * kKiB);
    if (!r.ok()) {
      ADD_FAILURE() << "image read at " << off << ": " << r.status().message();
      return image;
    }
    const auto bytes = r->ToBytes();
    image.insert(image.end(), bytes.begin(), bytes.end());
  }
  return image;
}

// The prefix-consistency verdict: the image must equal a replay of the
// first M plan writes for M = the highest stamp observed, and M must be at
// least `floor` (the writes known durable before the crash).
void CheckPrefix(const std::vector<PlannedWrite>& plan,
                 const std::vector<uint8_t>& image, size_t floor,
                 const std::string& label) {
  const std::vector<uint64_t> observed = ObservedStamps(image);
  size_t max_stamp = 0;
  for (uint64_t s : observed) {
    max_stamp = std::max(max_stamp, static_cast<size_t>(s));
  }
  EXPECT_GE(max_stamp, floor) << label << ": durable floor lost";
  EXPECT_EQ(observed, ReplayStamps(plan, max_stamp))
      << label << ": image is not a replay of the first " << max_stamp
      << " writes";
}

FleetConfig TortureFleetConfig(int hosts, PlacementPolicyKind placement =
                                              PlacementPolicyKind::kLoadSpread) {
  FleetConfig fc;
  fc.hosts = hosts;
  fc.shards = 1;
  fc.cluster = ClusterConfig::SsdPool();
  fc.cluster.num_disks = 4;
  fc.host.ssd_capacity = 512 * kMiB;
  fc.host.ssd = SsdParams::Instant();
  fc.placement = placement;
  fc.auto_failover = false;  // crash points drive failover explicitly
  return fc;
}

LsvdConfig TortureVolumeConfig(const std::string& name) {
  LsvdConfig config = TestWorld::SmallVolumeConfig();
  config.volume_name = name;
  return config;
}

// Creates the volume, applies the plan (drain after the first
// kDrainedWrites), and returns its id. All writes are acked when this
// returns; the tail beyond the drain may still be cache-only.
int SetUpVolume(Simulator* sim, FleetController* fleet,
                const std::string& name,
                const std::vector<PlannedWrite>& plan) {
  std::optional<Status> created;
  const int id = fleet->CreateVolume(TortureVolumeConfig(name),
                                     [&](Status s) { created = s; });
  while (!created.has_value() && sim->Step()) {
  }
  EXPECT_TRUE(created.has_value() && created->ok());
  EXPECT_GE(id, 0);
  for (size_t i = 0; i < plan.size(); i++) {
    EXPECT_TRUE(WriteSync(sim, fleet->disk(id), plan[i].vlba,
                          StampPayload(i + 1, plan[i].vlba, plan[i].len))
                    .ok());
    if (i + 1 == kDrainedWrites) {
      EXPECT_TRUE(DrainSync(sim, fleet->disk(id)).ok());
    }
  }
  return id;
}

// Steps until the volume settles in kActive or kFailed (with a step cap).
void SettleVolume(Simulator* sim, FleetController* fleet, int id) {
  uint64_t steps = 0;
  while (fleet->health(id) != FleetController::VolumeHealth::kActive &&
         fleet->health(id) != FleetController::VolumeHealth::kFailed &&
         steps++ < kStepCap && sim->Step()) {
  }
}

// Family A: crash the source host mid-drain. Swept over step counts between
// the MigrateVolume call and the kill, so the crash lands before, inside,
// and after the drain-and-seal. Whatever the landing spot, failover must
// produce a volume whose image is a valid prefix with the drained floor.
TEST(FleetTortureTest, CrashSourceMidDrainThenFailover) {
  for (const uint64_t kill_after : {0u, 10u, 100u, 1000u, 10000u}) {
    for (uint64_t seed = 1; seed <= 3; seed++) {
      Simulator sim;
      FleetController fleet(&sim, TortureFleetConfig(3));
      const auto plan = MakePlan(seed);
      const int id = SetUpVolume(&sim, &fleet, "vol", plan);
      const int src = fleet.host_of(id);

      std::optional<Status> mig;
      Status start = fleet.MigrateVolume(
          id, -1, [&](Status s, const MigrationStats&) { mig = s; });
      ASSERT_TRUE(start.ok());
      for (uint64_t i = 0; i < kill_after && sim.Step(); i++) {
      }
      fleet.KillHost(src);
      fleet.FailoverHost(src);
      SettleVolume(&sim, &fleet, id);

      const std::string label = "seed=" + std::to_string(seed) +
                                " kill_after=" + std::to_string(kill_after);
      ASSERT_EQ(fleet.health(id), FleetController::VolumeHealth::kActive)
          << label;
      EXPECT_NE(fleet.host_of(id), src) << label;
      // The source was fenced by the epoch flip (migration's or failover's).
      EXPECT_GE(fleet.volume_epoch(id), 2u) << label;
      CheckPrefix(plan, ReadImage(&sim, fleet.disk(id)), kDrainedWrites,
                  label);
    }
  }
}

// Family B: crash the destination mid-recover-attach. The migration drained
// everything to the backend before the handoff, so after the second
// failover the image must equal the FULL plan replay — K == total, nothing
// may be lost.
TEST(FleetTortureTest, CrashTargetMidRecoverAttachThenFailoverAgain) {
  for (const uint64_t kill_after : {0u, 5u, 50u, 500u, 5000u}) {
    for (uint64_t seed = 1; seed <= 3; seed++) {
      Simulator sim;
      FleetController fleet(&sim, TortureFleetConfig(3));
      const auto plan = MakePlan(seed);
      const int id = SetUpVolume(&sim, &fleet, "vol", plan);
      const int src = fleet.host_of(id);

      ASSERT_TRUE(fleet.MigrateVolume(id).ok());
      // Run the drain + handoff; stop as soon as the target's
      // recover-attach begins (or the migration wins the race outright).
      uint64_t steps = 0;
      while (fleet.health(id) == FleetController::VolumeHealth::kMigrating &&
             steps++ < kStepCap && sim.Step()) {
      }
      for (uint64_t i = 0; i < kill_after && sim.Step(); i++) {
      }
      const int dst = fleet.host_of(id);
      const std::string label = "seed=" + std::to_string(seed) +
                                " kill_after=" + std::to_string(kill_after);
      if (dst != src) {
        fleet.KillHost(dst);
        fleet.FailoverHost(dst);
      }
      SettleVolume(&sim, &fleet, id);

      ASSERT_EQ(fleet.health(id), FleetController::VolumeHealth::kActive)
          << label;
      // Everything was drained before the handoff: nothing may be lost.
      CheckPrefix(plan, ReadImage(&sim, fleet.disk(id)), plan.size(), label);
      const auto observed = ObservedStamps(ReadImage(&sim, fleet.disk(id)));
      EXPECT_EQ(observed, ReplayStamps(plan, plan.size())) << label;
    }
  }
}

// Family C: a lease-expiry failover racing a live migration on a
// partitioned host. The host keeps running (its stale attachments serve
// on), the failover steals both its volumes, and the double-attach rule
// holds: stale writes bounce off the fence and never reach the new
// attachment's image.
TEST(FleetTortureTest, LeaseExpiryRacesMigrationOnPartitionedHost) {
  for (const uint64_t steal_after : {0u, 20u, 200u, 2000u, 20000u}) {
    const uint64_t seed = steal_after + 7;
    Simulator sim;
    // First-fit placement co-locates both volumes on host 0.
    FleetController fleet(&sim, TortureFleetConfig(
                                    3, PlacementPolicyKind::kFirstFit));
    const auto plan = MakePlan(seed);
    const int mover = SetUpVolume(&sim, &fleet, "mover", plan);
    const int bystander = SetUpVolume(&sim, &fleet, "bystander", plan);
    ASSERT_EQ(fleet.host_of(mover), fleet.host_of(bystander));
    const int p = fleet.host_of(mover);

    std::optional<Status> mig;
    ASSERT_TRUE(fleet
                    .MigrateVolume(mover, -1,
                                   [&](Status s, const MigrationStats&) {
                                     mig = s;
                                   })
                    .ok());
    fleet.PartitionHost(p);  // heartbeats stop; the host keeps running
    for (uint64_t i = 0; i < steal_after && sim.Step(); i++) {
    }
    const bool migrating =
        fleet.health(mover) == FleetController::VolumeHealth::kMigrating;
    fleet.FailoverHost(p);  // what DeclareDead would do at lease expiry
    SettleVolume(&sim, &fleet, mover);
    SettleVolume(&sim, &fleet, bystander);

    const std::string label = "steal_after=" + std::to_string(steal_after);
    ASSERT_EQ(fleet.health(mover), FleetController::VolumeHealth::kActive)
        << label;
    ASSERT_EQ(fleet.health(bystander),
              FleetController::VolumeHealth::kActive)
        << label;
    EXPECT_NE(fleet.host_of(bystander), p) << label;
    if (migrating) {
      // The failover stole the volume mid-flight and aborted the migration.
      EXPECT_EQ(
          fleet.metrics().GetCounter("fleet.migrations_aborted")->value(), 1u)
          << label;
    }

    // Double-attach: the partitioned host still runs the bystander's stale
    // attachment. Its writes may ack locally (they land in the stale write
    // cache) but the epoch fence keeps them out of the object stream.
    LsvdDisk* stale = fleet.stale_disk(bystander);
    ASSERT_NE(stale, nullptr) << label;
    const uint64_t poison_vlba = 0;
    stale->Write(poison_vlba, StampPayload(999, poison_vlba, kStampBlock),
                 [](Status) {});
    stale->Flush([](Status) {});
    uint64_t steps = 0;
    while (steps++ < kStepCap && sim.Step()) {
    }
    const auto observed =
        ObservedStamps(ReadImage(&sim, fleet.disk(bystander)));
    for (uint64_t s : observed) {
      EXPECT_NE(s, 999u) << label << ": stale write leaked through the fence";
    }
    CheckPrefix(plan, ReadImage(&sim, fleet.disk(bystander)), kDrainedWrites,
                label + " bystander");
    CheckPrefix(plan, ReadImage(&sim, fleet.disk(mover)), kDrainedWrites,
                label + " mover");
  }
}

// Family D: clone fan-out determinism — the same seed must produce an
// identical fleet metric dump, clone placements included.
TEST(FleetTortureTest, CloneFanOutIsDeterministicPerSeed) {
  auto run_once = [](uint64_t seed) {
    Simulator sim;
    FleetController fleet(&sim, TortureFleetConfig(3));
    std::optional<Status> created;
    const int golden = fleet.CreateVolume(TortureVolumeConfig("golden"),
                                          [&](Status s) { created = s; });
    while (!created.has_value() && sim.Step()) {
    }
    EXPECT_TRUE(created.has_value() && created->ok());
    // The seed shapes the workload (image size), not just payload bytes, so
    // distinct seeds produce distinguishable dumps.
    const uint64_t image_bytes = (seed % 5 + 1) * 64 * kKiB;
    EXPECT_TRUE(
        WriteSync(&sim, fleet.disk(golden), 0,
                  TestPattern(image_bytes, seed))
            .ok());
    std::optional<Result<uint64_t>> snap;
    fleet.disk(golden)->Snapshot([&](Result<uint64_t> r) {
      snap = std::move(r);
    });
    while (!snap.has_value() && sim.Step()) {
    }
    EXPECT_TRUE(snap.has_value() && snap->ok());
    for (int i = 0; i < 12; i++) {
      fleet.CloneVolume(golden, "clone" + std::to_string(i), **snap);
    }
    sim.Run();
    EXPECT_EQ(fleet.metrics().GetCounter("fleet.clones")->value(), 12u);
    return fleet.metrics().ToJson();
  };
  const std::string a = run_once(42);
  EXPECT_EQ(a, run_once(42));
  EXPECT_NE(a, run_once(43));  // the seed actually reaches the workload
}

}  // namespace
}  // namespace lsvd
