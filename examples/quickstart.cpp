// Quickstart: create an LSVD virtual disk over an S3-like object store,
// write, flush, read, and inspect what happened underneath.
//
//   $ ./quickstart
//
// Everything runs inside the discrete-event simulator: the "SSD" and the
// "object store" are the same data-bearing models the test suite and the
// paper-reproduction benches use, so the I/O you see here is the real LSVD
// write path — journal records on the cache device, batched immutable
// objects on the backend.
#include <cstdio>

#include "src/lsvd/lsvd_disk.h"
#include "src/objstore/sim_object_store.h"
#include "src/util/table.h"

using namespace lsvd;

int main() {
  // 1. A world: one client machine (NVMe cache SSD + 10 GbE) and a Ceph-like
  //    backend pool behind an S3 gateway with a 4,2 erasure code.
  Simulator sim;
  ClientHost host(&sim, ClientHostConfig{});
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  // 2. An 8 GiB virtual disk with a 1 GiB SSD cache.
  LsvdConfig config;
  config.volume_name = "quickstart";
  config.volume_size = 8 * kGiB;
  config.write_cache_size = 256 * kMiB;
  config.read_cache_size = 768 * kMiB;
  LsvdDisk disk(&host, &store, config);

  disk.Create([](Status s) {
    std::printf("create: %s\n", s.ToString().c_str());
  });
  sim.Run();

  // 3. Write a few extents, then issue a commit barrier.
  std::vector<uint8_t> payload(64 * kKiB);
  for (size_t i = 0; i < payload.size(); i++) {
    payload[i] = static_cast<uint8_t>(i * 31);
  }
  for (int i = 0; i < 16; i++) {
    disk.Write(static_cast<uint64_t>(i) * kMiB, Buffer::FromBytes(payload),
               [i](Status s) {
                 if (!s.ok()) {
                   std::printf("write %d failed: %s\n", i,
                               s.ToString().c_str());
                 }
               });
  }
  disk.Flush([](Status s) {
    std::printf("commit barrier: %s (a single cache-device flush — no "
                "metadata writes)\n",
                s.ToString().c_str());
  });
  sim.Run();

  // 4. Read one extent back and verify.
  disk.Read(3 * kMiB, 64 * kKiB, [&](Result<Buffer> r) {
    if (!r.ok()) {
      std::printf("read failed: %s\n", r.status().ToString().c_str());
      return;
    }
    const bool match = *r == Buffer::FromBytes(payload);
    std::printf("read back 64 KiB at 3 MiB: %s\n",
                match ? "contents verified" : "MISMATCH");
  });
  sim.Run();

  // 5. Drain writeback so the backend image matches the cache (what a VM
  //    migration would wait for), then look under the hood.
  disk.Drain([](Status s) {
    std::printf("drain (cache and backend synchronized): %s\n",
                s.ToString().c_str());
  });
  sim.Run();

  const auto& wc = disk.write_cache().stats();
  const auto& be = disk.backend().stats();
  std::printf("\nunder the hood after %.1f ms of simulated time:\n",
              ToSeconds(sim.now()) * 1e3);
  std::printf("  journal records written: %llu (%s)\n",
              static_cast<unsigned long long>(wc.records),
              Table::FmtBytes(wc.record_bytes).c_str());
  std::printf("  backend objects created: %llu (%s payload)\n",
              static_cast<unsigned long long>(be.objects_put),
              Table::FmtBytes(be.payload_bytes).c_str());
  for (const auto& name : store.List("quickstart.")) {
    auto size = store.Head(name);
    std::printf("    %s (%s)\n", name.c_str(),
                Table::FmtBytes(size.ok() ? *size : 0).c_str());
  }
  std::printf("  object map extents: %zu (in-memory, ~24 B each)\n",
              disk.backend().object_map().extent_count());
  return 0;
}
