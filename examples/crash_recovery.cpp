// Crash recovery walkthrough (paper §3.3/§3.4): the two failure modes and
// what LSVD guarantees in each.
//
//   1. Client crash, cache survives  -> ALL committed writes recovered
//      (rewind the cache log, replay the tail to the backend).
//   2. Total cache loss              -> prefix consistency: the image equals
//      the effect of some prefix of the acknowledged writes.
//
//   $ ./crash_recovery
#include <cstdio>

#include "src/lsvd/lsvd_disk.h"
#include "src/objstore/sim_object_store.h"
#include "src/util/rng.h"

using namespace lsvd;

namespace {

Buffer Stamp(uint64_t version) {
  std::vector<uint8_t> bytes(16 * kKiB, 0);
  for (int i = 0; i < 8; i++) {
    bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(version >> (8 * i));
  }
  bytes[8] = 0xAB;  // non-zero marker
  return Buffer::FromBytes(bytes);
}

uint64_t ReadStamp(const Buffer& data) {
  auto bytes = data.Slice(0, 16).ToBytes();
  if (bytes[8] != 0xAB) {
    return 0;  // never written
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) {
    v |= static_cast<uint64_t>(bytes[static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace

int main() {
  Simulator sim;
  ClientHostConfig hc;
  ClientHost host(&sim, hc);
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  LsvdConfig config;
  config.volume_name = "vm-root";
  config.volume_size = kGiB;
  config.write_cache_size = 64 * kMiB;
  config.read_cache_size = 64 * kMiB;
  config.batch_bytes = kMiB;

  auto disk = std::make_unique<LsvdDisk>(&host, &store, config);
  disk->Create([](Status) {});
  sim.Run();

  // Write versioned stamps to 32 slots; flush halfway (commit barrier).
  constexpr uint64_t kSlots = 32;
  Rng rng(7);
  std::vector<uint64_t> committed(kSlots, 0);
  uint64_t version = 0;
  for (int i = 0; i < 200; i++) {
    const uint64_t slot = rng.Uniform(kSlots);
    version++;
    disk->Write(slot * 16 * kKiB, Stamp(version), [](Status) {});
    committed[slot] = version;
    if (i == 99) {
      disk->Flush([](Status) {});
      sim.Run();
      std::printf("commit barrier after write #%llu\n",
                  static_cast<unsigned long long>(version));
    }
  }
  disk->Flush([](Status) {});
  sim.Run();
  std::printf("200 writes committed (latest version %llu)\n\n",
              static_cast<unsigned long long>(version));

  // --- failure mode 1: client crash, SSD survives (power failure) ---
  const DiskRegions regions = disk->regions();
  disk->Kill();
  store.ClientCrash();
  host.ssd()->PowerFail();
  sim.Run();
  std::printf("CRASH #1: client died mid-writeback; cache SSD survives\n");

  disk = std::make_unique<LsvdDisk>(&host, &store, config, regions);
  disk->OpenAfterCrash([](Status s) {
    std::printf("OpenAfterCrash: %s (cache log replayed, tail re-sent to "
                "backend)\n",
                s.ToString().c_str());
  });
  sim.Run();

  int intact = 0;
  for (uint64_t slot = 0; slot < kSlots; slot++) {
    disk->Read(slot * 16 * kKiB, 16 * kKiB, [&, slot](Result<Buffer> r) {
      if (r.ok() && ReadStamp(*r) == committed[slot]) {
        intact++;
      }
    });
  }
  sim.Run();
  std::printf("committed writes recovered: %d / %llu slots  (guarantee: "
              "all)\n\n",
              intact, static_cast<unsigned long long>(kSlots));

  // --- failure mode 2: total cache loss ---
  disk->Kill();
  store.ClientCrash();
  host.ssd()->DiscardAll();
  sim.Run();
  std::printf("CRASH #2: machine replaced; cache SSD contents gone\n");

  ClientHost host2(&sim, hc);
  LsvdDisk recovered(&host2, &store, config);
  recovered.OpenCacheLost([](Status s) {
    std::printf("OpenCacheLost: %s (longest consecutive object prefix)\n",
                s.ToString().c_str());
  });
  sim.Run();

  // Check prefix consistency: every slot's stamp must be <= the newest
  // stamp, and collectively they must describe a prefix of write order.
  uint64_t max_seen = 0;
  std::vector<uint64_t> seen(kSlots, 0);
  for (uint64_t slot = 0; slot < kSlots; slot++) {
    recovered.Read(slot * 16 * kKiB, 16 * kKiB, [&, slot](Result<Buffer> r) {
      if (r.ok()) {
        seen[slot] = ReadStamp(*r);
        max_seen = std::max(max_seen, seen[slot]);
      }
    });
  }
  sim.Run();
  std::printf("recovered image reflects writes up to version %llu of %llu\n",
              static_cast<unsigned long long>(max_seen),
              static_cast<unsigned long long>(version));
  // Verify no slot shows a version that should have been overwritten before
  // max_seen (i.e. the state is exactly the prefix ending at max_seen).
  bool prefix_ok = true;
  {
    Rng replay(7);
    std::vector<uint64_t> expect(kSlots, 0);
    uint64_t v = 0;
    for (int i = 0; i < 200 && v < max_seen; i++) {
      const uint64_t slot = replay.Uniform(kSlots);
      expect[slot] = ++v;
    }
    for (uint64_t slot = 0; slot < kSlots; slot++) {
      if (seen[slot] != expect[slot]) {
        prefix_ok = false;
      }
    }
  }
  std::printf("prefix consistency: %s\n",
              prefix_ok ? "HOLDS — the image is exactly the effect of a "
                          "prefix of acknowledged writes"
                        : "VIOLATED");
  return prefix_ok ? 0 : 1;
}
