// Snapshots and clones (paper §3.6): pin a log position, mount it read-only,
// clone writable volumes that share the base image's object-stream prefix,
// and watch the garbage collector defer deletes while a snapshot pins them.
//
//   $ ./snapshots_and_clones
#include <cstdio>

#include "src/lsvd/lsvd_disk.h"
#include "src/objstore/sim_object_store.h"

using namespace lsvd;

namespace {

Buffer Tag(const char* text, uint64_t len) {
  std::vector<uint8_t> bytes(len, 0);
  for (size_t i = 0; text[i] != '\0' && i < bytes.size(); i++) {
    bytes[i] = static_cast<uint8_t>(text[i]);
  }
  return Buffer::FromBytes(bytes);
}

std::string FirstBytes(const Buffer& data) {
  auto bytes = data.Slice(0, 16).ToBytes();
  std::string s;
  for (uint8_t b : bytes) {
    if (b == 0) {
      break;
    }
    s.push_back(static_cast<char>(b));
  }
  return s;
}

}  // namespace

int main() {
  Simulator sim;
  ClientHost host(&sim, ClientHostConfig{});
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  LsvdConfig config;
  config.volume_name = "base";
  config.volume_size = kGiB;
  config.write_cache_size = 64 * kMiB;
  config.read_cache_size = 64 * kMiB;
  config.batch_bytes = kMiB;

  // 1. A base volume with "golden image" content.
  LsvdDisk base(&host, &store, config);
  base.Create([](Status s) { std::printf("create base: %s\n",
                                         s.ToString().c_str()); });
  sim.Run();
  base.Write(0, Tag("golden-image-v1", 64 * kKiB), [](Status) {});
  sim.Run();

  // 2. Snapshot it (drains writeback, pins object seq N).
  uint64_t snap_seq = 0;
  base.Snapshot([&](Result<uint64_t> r) {
    snap_seq = r.ok() ? *r : 0;
    std::printf("snapshot at object seq %llu\n",
                static_cast<unsigned long long>(snap_seq));
  });
  sim.Run();

  // 3. The base keeps evolving past the snapshot.
  base.Write(0, Tag("golden-image-v2", 64 * kKiB), [](Status) {});
  sim.Run();
  bool drained = false;
  base.Drain([&](Status) { drained = true; });
  sim.Run();

  // 4. Mount the snapshot read-only: recovery backtracks to a checkpoint at
  //    or before the pinned seq and replays no further.
  LsvdConfig view_config = config;
  view_config.open_limit_seq = snap_seq;
  LsvdDisk view(&host, &store, view_config);
  view.OpenCacheLost([](Status s) {
    std::printf("mount snapshot view: %s\n", s.ToString().c_str());
  });
  sim.Run();
  view.Read(0, 64 * kKiB, [](Result<Buffer> r) {
    std::printf("snapshot view reads: \"%s\" (live volume is at v2)\n",
                r.ok() ? FirstBytes(*r).c_str() : "?");
  });
  base.Read(0, 64 * kKiB, [](Result<Buffer> r) {
    std::printf("live base reads:     \"%s\"\n",
                r.ok() ? FirstBytes(*r).c_str() : "?");
  });
  sim.Run();

  // 5. Two writable clones share the base prefix (Figure 5): their object
  //    streams are "clone1.d.*" / "clone2.d.*" on top of "base.d.*".
  LsvdConfig c1 = base.MakeCloneConfig("clone1", snap_seq);
  LsvdConfig c2 = base.MakeCloneConfig("clone2", snap_seq);
  LsvdDisk clone1(&host, &store, c1);
  LsvdDisk clone2(&host, &store, c2);
  clone1.Create([](Status s) { std::printf("create clone1: %s\n",
                                           s.ToString().c_str()); });
  clone2.Create([](Status s) { std::printf("create clone2: %s\n",
                                           s.ToString().c_str()); });
  sim.Run();

  clone1.Write(0, Tag("clone1-changes", 64 * kKiB), [](Status) {});
  sim.Run();
  bool d1 = false;
  clone1.Drain([&](Status) { d1 = true; });
  sim.Run();

  clone1.Read(0, 64 * kKiB, [](Result<Buffer> r) {
    std::printf("clone1 reads its own write: \"%s\"\n",
                r.ok() ? FirstBytes(*r).c_str() : "?");
  });
  clone2.Read(0, 64 * kKiB, [](Result<Buffer> r) {
    std::printf("clone2 still reads the base: \"%s\"\n",
                r.ok() ? FirstBytes(*r).c_str() : "?");
  });
  sim.Run();

  // 6. Show the object streams, then delete the snapshot and watch deferred
  //    deletes release.
  std::printf("\nobject streams in the store:\n");
  for (const char* prefix : {"base.d.", "clone1.d.", "clone2.d."}) {
    std::printf("  %-10s %zu objects\n", prefix, store.List(prefix).size());
  }
  std::printf("deferred deletes pinned by the snapshot: %zu\n",
              base.backend().deferred_deletes().size());
  base.DeleteSnapshot(snap_seq, [](Status s) {
    std::printf("delete snapshot: %s\n", s.ToString().c_str());
  });
  sim.Run();
  std::printf("deferred deletes after snapshot removal: %zu\n",
              base.backend().deferred_deletes().size());
  return 0;
}
