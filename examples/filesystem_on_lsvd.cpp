// A filesystem on a virtual disk, and why write ordering matters
// (paper §4.4, Table 4).
//
// Formats minifs (the repo's journaled mini filesystem) on an LSVD volume,
// copies a file tree with periodic fsync, then simulates the worst-case
// failure — client machine gone, cache SSD lost — and runs fsck against the
// image recovered from the object store alone.
//
//   $ ./filesystem_on_lsvd
#include <cstdio>

#include "src/lsvd/lsvd_disk.h"
#include "src/minifs/minifs.h"
#include "src/objstore/sim_object_store.h"
#include "src/util/rng.h"

using namespace lsvd;

int main() {
  Simulator sim;
  ClientHost host(&sim, ClientHostConfig{});
  BackendCluster cluster(&sim, ClusterConfig::SsdPool());
  NetLink link(&sim, NetParams{});
  SimObjectStore store(&sim, &cluster, &link, SimObjectStoreConfig{});

  LsvdConfig config;
  config.volume_name = "fsvol";
  config.volume_size = 2 * kGiB;
  config.write_cache_size = 64 * kMiB;
  config.read_cache_size = 128 * kMiB;
  config.batch_bytes = kMiB;
  LsvdDisk disk(&host, &store, config);
  disk.Create([](Status) {});
  sim.Run();

  MiniFsGeometry geo;
  geo.max_files = 4096;
  MiniFs::Format(&sim, &disk, geo, [](Status s) {
    std::printf("mkfs.minifs on LSVD volume: %s\n", s.ToString().c_str());
  });
  sim.Run();

  std::shared_ptr<MiniFs> fs;
  MiniFs::Mount(&sim, &disk, [&](Result<std::shared_ptr<MiniFs>> r) {
    if (r.ok()) {
      fs = *r;
    }
  });
  sim.Run();
  if (!fs) {
    std::printf("mount failed\n");
    return 1;
  }

  // Copy a tree of files, fsync every 25 (like cp + periodic sync).
  Rng rng(11);
  constexpr int kFiles = 400;
  int created = 0;
  for (int i = 0; i < kFiles; i++) {
    bool ok = false;
    fs->CreateFile("tree/file" + std::to_string(i),
                   Buffer::Zeros(8 * kKiB + rng.Uniform(3) * 4 * kKiB),
                   [&](Status s) { ok = s.ok(); });
    sim.Run();
    if (ok) {
      created++;
    }
    if (i % 25 == 24) {
      fs->Fsync([](Status) {});
      sim.Run();
    }
  }
  std::printf("copied %d files (fsync every 25), then... \n", created);

  // The worst case: machine dies AND the cache SSD is lost.
  fs->Kill();
  disk.Kill();
  store.ClientCrash();
  host.ssd()->DiscardAll();
  sim.Run();
  std::printf("CRASH: client machine gone, cache SSD lost\n");

  // Recover purely from the object store and fsck.
  ClientHost host2(&sim, ClientHostConfig{});
  LsvdDisk recovered(&host2, &store, config);
  recovered.OpenCacheLost([](Status s) {
    std::printf("recovered volume from object store: %s\n",
                s.ToString().c_str());
  });
  sim.Run();

  MiniFs::Fsck(&sim, &recovered, [](MiniFs::FsckReport report) {
    std::printf("fsck: mountable=%s structurally_clean=%s files=%llu "
                "intact=%llu corrupt=%llu\n",
                report.mountable ? "yes" : "NO",
                report.structurally_clean ? "yes" : "NO",
                static_cast<unsigned long long>(report.files_found),
                static_cast<unsigned long long>(report.files_intact),
                static_cast<unsigned long long>(report.files_corrupt));
    std::printf("=> %s\n",
                report.clean()
                    ? "the recovered image is a consistent prefix: every "
                      "file present is intact (paper Table 4: LSVD mounts "
                      "3/3; bcache lost everything in one trial)"
                    : "INCONSISTENT image");
  });
  sim.Run();
  return 0;
}
