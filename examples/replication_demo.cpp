// Asynchronous geo-replication demo (paper §4.8): because the backend log is
// a stream of immutable named objects, replicating a volume is just lazily
// copying objects to a second store — and the replica mounts with the
// standard recovery rules even if objects arrived out of order.
//
//   $ ./replication_demo
#include <cstdio>

#include "src/lsvd/lsvd_disk.h"
#include "src/lsvd/replicator.h"
#include "src/objstore/sim_object_store.h"
#include "src/util/table.h"
#include "src/util/rng.h"

using namespace lsvd;

int main() {
  Simulator sim;
  ClientHost host(&sim, ClientHostConfig{});

  // Primary datacenter: SSD pool. Secondary: HDD pool (cheaper, remote).
  BackendCluster primary_cluster(&sim, ClusterConfig::SsdPool());
  NetLink primary_link(&sim, NetParams{});
  SimObjectStore primary(&sim, &primary_cluster, &primary_link,
                         SimObjectStoreConfig{});
  BackendCluster replica_cluster(&sim, ClusterConfig::HddPool());
  NetLink replica_link(&sim, NetParams{});
  SimObjectStore replica(&sim, &replica_cluster, &replica_link,
                         SimObjectStoreConfig{});

  LsvdConfig config;
  config.volume_name = "geo";
  config.volume_size = kGiB;
  config.write_cache_size = 64 * kMiB;
  config.read_cache_size = 64 * kMiB;
  config.batch_bytes = kMiB;
  LsvdDisk disk(&host, &primary, config);
  disk.Create([](Status) {});
  sim.Run();

  // Replicate objects older than 10 seconds, polling every 2 seconds.
  ReplicatorConfig rc;
  rc.volume_name = "geo";
  rc.min_age = 10 * kSecond;
  rc.poll_interval = 2 * kSecond;
  Replicator replicator(&sim, &primary, &replica, rc);
  replicator.Start();

  // A workload that keeps overwriting a hot region (so GC deletes some
  // objects before they ever replicate) while also laying down cold data.
  Rng rng(3);
  for (int burst = 0; burst < 12; burst++) {
    for (int i = 0; i < 40; i++) {
      const uint64_t slot =
          rng.Bernoulli(0.6) ? rng.Uniform(16) : 16 + rng.Uniform(2000);
      disk.Write(slot * 64 * kKiB,
                 Buffer::FromBytes(std::vector<uint8_t>(
                     64 * kKiB, static_cast<uint8_t>(burst + 1))),
                 [](Status) {});
    }
    sim.RunUntil(sim.now() + 5 * kSecond);
    std::printf("t=%3.0fs  primary objects: %3zu   replica objects: %3zu   "
                "copied %s\n",
                ToSeconds(sim.now()), primary.List("geo.d.").size(),
                replica.List("geo.d.").size(),
                Table::FmtBytes(replicator.stats().bytes_copied).c_str());
  }
  bool drained = false;
  disk.Drain([&](Status) { drained = true; });
  sim.RunUntil(sim.now() + 30 * kSecond);
  replicator.PollOnce([] {});
  sim.RunUntil(sim.now() + kSecond);
  replicator.Stop();
  disk.Kill();
  sim.Run();

  std::printf("\nobjects copied: %llu, skipped because GC deleted them "
              "first: %llu\n",
              static_cast<unsigned long long>(
                  replicator.stats().objects_copied),
              static_cast<unsigned long long>(
                  replicator.stats().objects_skipped_deleted));

  // Mount the replica in the secondary datacenter.
  ClientHost dr_host(&sim, ClientHostConfig{});
  LsvdDisk dr(&dr_host, &replica, config);
  dr.OpenCacheLost([](Status s) {
    std::printf("disaster-recovery mount of the replica: %s\n",
                s.ToString().c_str());
  });
  sim.Run();
  std::printf("replica recovered through object seq %llu\n",
              static_cast<unsigned long long>(dr.backend().applied_seq()));
  dr.Read(0, 64 * kKiB, [](Result<Buffer> r) {
    std::printf("read from replica: %s\n",
                r.ok() ? "OK (consistent prefix of the primary)" : "FAILED");
  });
  sim.Run();
  return 0;
}
